"""Unit tests for backward-chaining goal trees."""

import numpy as np
import pytest

from repro.core import parallel_solve, sequential_solve
from repro.logic import KnowledgeBase, goal_tree, prove
from repro.types import Gate


class TestLeafCases:
    def test_fact_is_leaf_one(self):
        kb = KnowledgeBase(facts=["a"])
        t = goal_tree(kb, "a")
        assert t.is_leaf(0)
        assert t.leaf_value(0) == 1

    def test_unknown_atom_is_leaf_zero(self):
        kb = KnowledgeBase()
        t = goal_tree(kb, "nope")
        assert t.leaf_value(0) == 0

    def test_empty_body_rule_proves(self):
        kb = KnowledgeBase()
        kb.add_rule("a", [])
        assert prove(kb, "a")

    def test_fact_wins_over_rules(self):
        kb = KnowledgeBase(facts=["a"])
        kb.add_rule("a", ["impossible"])
        assert prove(kb, "a")


class TestStructure:
    def test_gates_alternate_or_and(self):
        kb = KnowledgeBase(facts=["f"])
        kb.add_rule("g", ["f", "f"])
        t = goal_tree(kb, "g")
        assert t.gate(0) is Gate.OR
        rule_node = t.children(0)[0]
        assert t.gate(rule_node) is Gate.AND

    def test_one_child_per_rule(self):
        kb = KnowledgeBase(facts=["x"])
        kb.add_rule("g", ["x"])
        kb.add_rule("g", ["y"])
        t = goal_tree(kb, "g")
        assert len(t.children(0)) == 2

    def test_cycles_cut_to_zero_leaf(self):
        kb = KnowledgeBase()
        kb.add_rule("a", ["b"])
        kb.add_rule("b", ["a"])
        assert not prove(kb, "a")

    def test_self_loop(self):
        kb = KnowledgeBase()
        kb.add_rule("a", ["a"])
        assert not prove(kb, "a")

    def test_cycle_with_escape(self):
        kb = KnowledgeBase(facts=["base"])
        kb.add_rule("a", ["b"])
        kb.add_rule("b", ["a"])
        kb.add_rule("b", ["base"])
        assert prove(kb, "a")


class TestAgainstForwardChaining:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_kbs(self, seed):
        rng = np.random.default_rng(seed)
        atoms = [f"p{i}" for i in range(8)]
        kb = KnowledgeBase(
            facts=[a for a in atoms if rng.random() < 0.25]
        )
        for _ in range(12):
            head = atoms[int(rng.integers(8))]
            body = [
                atoms[int(rng.integers(8))]
                for _ in range(int(rng.integers(0, 3)))
            ]
            kb.add_rule(head, body)
        closure = kb.forward_closure()
        for atom in atoms:
            assert prove(kb, atom) == (atom in closure)

    @pytest.mark.parametrize("seed", range(6))
    def test_parallel_prover_agrees(self, seed):
        rng = np.random.default_rng(100 + seed)
        atoms = [f"q{i}" for i in range(6)]
        kb = KnowledgeBase(
            facts=[a for a in atoms if rng.random() < 0.3]
        )
        for _ in range(10):
            head = atoms[int(rng.integers(6))]
            body = [
                atoms[int(rng.integers(6))]
                for _ in range(int(rng.integers(1, 3)))
            ]
            kb.add_rule(head, body)
        closure = kb.forward_closure()
        for atom in atoms:
            seq = sequential_solve(goal_tree(kb, atom))
            par = parallel_solve(goal_tree(kb, atom), 1)
            assert bool(seq.value) == bool(par.value) == \
                (atom in closure)
