"""Unit tests for the Horn knowledge base."""

import pytest

from repro.logic import KnowledgeBase, Rule


class TestRule:
    def test_repr_fact_style(self):
        assert repr(Rule("a", ())) == "a."

    def test_repr_with_body(self):
        assert repr(Rule("a", ("b", "c"))) == "a :- b, c"

    def test_empty_head_rejected(self):
        with pytest.raises(ValueError):
            Rule("", ("b",))


class TestKnowledgeBase:
    def test_facts_and_rules(self):
        kb = KnowledgeBase(facts=["a"], rules=[Rule("b", ("a",))])
        assert kb.is_fact("a")
        assert not kb.is_fact("b")
        assert kb.rules_for("b") == [Rule("b", ("a",))]
        assert kb.rules_for("zzz") == []

    def test_add_incrementally(self):
        kb = KnowledgeBase()
        kb.add_fact("x")
        kb.add_rule("y", ["x"])
        assert kb.is_fact("x")
        assert len(kb.rules_for("y")) == 1

    def test_rules_keep_declaration_order(self):
        kb = KnowledgeBase()
        kb.add_rule("g", ["a"])
        kb.add_rule("g", ["b"])
        assert [r.body for r in kb.rules_for("g")] == [("a",), ("b",)]


class TestForwardClosure:
    def test_chain(self):
        kb = KnowledgeBase(facts=["a"])
        kb.add_rule("b", ["a"])
        kb.add_rule("c", ["b"])
        assert kb.forward_closure() == {"a", "b", "c"}

    def test_conjunction(self):
        kb = KnowledgeBase(facts=["a"])
        kb.add_rule("c", ["a", "b"])
        assert "c" not in kb.forward_closure()
        kb.add_fact("b")
        assert "c" in kb.forward_closure()

    def test_cycle_is_not_support(self):
        kb = KnowledgeBase()
        kb.add_rule("a", ["b"])
        kb.add_rule("b", ["a"])
        assert kb.forward_closure() == frozenset()

    def test_empty_body_rule_is_axiom(self):
        kb = KnowledgeBase()
        kb.add_rule("a", [])
        assert kb.forward_closure() == {"a"}
