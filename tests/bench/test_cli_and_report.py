"""Unit tests for the CLI and the EXPERIMENTS.md report generator."""

import os

import pytest

from repro.__main__ import main
from repro.bench.report import (
    EXPECTATIONS,
    generate_experiments_md,
    load_table_text,
)


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e16" in out and "e21" in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--height", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Sequential SOLVE" in out
        assert "Section-7 machine" in out
        assert "root value" in out

    def test_run_small_experiment(self, capsys):
        assert main(["run", "e06", "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "Lemmas 1 & 2" in out

    def test_verify_runs(self, capsys):
        assert main(["verify", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "agreed with ground truth" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestBenchCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e21b" in out and "e25" in out
        assert "infra" in out

    def test_bench_run_write_and_diff(self, tmp_path, capsys):
        first = str(tmp_path / "BENCH_2026-01-01.json")
        second = str(tmp_path / "BENCH_2026-01-02.json")
        assert main([
            "bench", "--spec", "e06", "--spec", "e04", "--quick",
            "--out", first, "--date", "2026-01-01",
        ]) == 0
        assert main([
            "bench", "--spec", "e06", "--spec", "e04", "--quick",
            "--out", second, "--date", "2026-01-02",
        ]) == 0
        capsys.readouterr()
        assert main(["bench", "--diff", first, second]) == 0
        assert "diff: OK" in capsys.readouterr().out

    def test_bench_diff_catches_doctored_regression(
        self, tmp_path, capsys
    ):
        from repro.bench.snapshot import load_snapshot, write_snapshot

        good = str(tmp_path / "BENCH_2026-01-01.json")
        assert main([
            "bench", "--spec", "e06", "--quick",
            "--out", good, "--date", "2026-01-01",
        ]) == 0
        doc = load_snapshot(good)
        entry = doc["specs"]["e06"]
        metric = next(iter(entry["metrics"]))
        entry["metrics"][metric] += 1000.0
        bad = str(tmp_path / "BENCH_2026-01-02.json")
        write_snapshot(doc, bad)
        capsys.readouterr()
        assert main(["bench", "--diff", good, bad]) == 1
        assert "diff: FAILED" in capsys.readouterr().out

    def test_bench_unknown_spec_fails(self, capsys):
        assert main(["bench", "--spec", "e99"]) != 0


class TestReport:
    def test_expectations_cover_all_experiments(self):
        names = {e.experiment for e in EXPECTATIONS}
        for i in range(1, 23):
            assert f"e{i:02d}" in names

    def test_load_missing_table(self, tmp_path):
        text = load_table_text("e01", directory=str(tmp_path))
        assert "no saved results" in text

    def test_generate_report(self, tmp_path):
        from repro.bench.snapshot import save_table_entry

        results = tmp_path / "results"
        results.mkdir()
        save_table_entry(
            "e01", "[e01] demo table\n1 2 3", "a,b\n1,2\n",
            directory=str(results),
        )
        out = tmp_path / "EXPERIMENTS.md"
        text = generate_experiments_md(
            results_dir=str(results), out_path=str(out)
        )
        assert os.path.exists(out)
        assert "[e01] demo table" in text
        assert "Paper claim" in text
        # Every experiment section is present even without results.
        assert text.count("## E") == len(EXPECTATIONS)
