"""Unit tests for the CLI and the EXPERIMENTS.md report generator."""

import os

import pytest

from repro.__main__ import main
from repro.bench.report import (
    EXPECTATIONS,
    generate_experiments_md,
    load_table_text,
)


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e16" in out and "e21" in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--height", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Sequential SOLVE" in out
        assert "Section-7 machine" in out
        assert "root value" in out

    def test_run_small_experiment(self, capsys):
        assert main(["run", "e06", "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "Lemmas 1 & 2" in out

    def test_verify_runs(self, capsys):
        assert main(["verify", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "agreed with ground truth" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_expectations_cover_all_experiments(self):
        names = {e.experiment for e in EXPECTATIONS}
        for i in range(1, 23):
            assert f"e{i:02d}" in names

    def test_load_missing_table(self, tmp_path):
        text = load_table_text("e01", directory=str(tmp_path))
        assert "no saved results" in text

    def test_generate_report(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "e01.txt").write_text("[e01] demo table\n1 2 3\n")
        out = tmp_path / "EXPERIMENTS.md"
        text = generate_experiments_md(
            results_dir=str(results), out_path=str(out)
        )
        assert os.path.exists(out)
        assert "[e01] demo table" in text
        assert "Paper claim" in text
        # Every experiment section is present even without results.
        assert text.count("## E") == len(EXPECTATIONS)
