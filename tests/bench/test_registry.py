"""Unit tests for the declarative benchmark spec registry."""

import pytest

from repro.bench.registry import (
    Band,
    BenchSpec,
    Gate,
    SpecResult,
    get_spec,
    list_specs,
    list_suites,
    register_spec,
    select_specs,
    temporary_registry,
)
from repro.errors import WorkloadError


def _spec(name="demo", suite="s", gates=(), bands=None, **kw):
    def runner(params, wallclock):
        return SpecResult(metrics={"m": float(params.get("m", 1))})

    return BenchSpec(
        name=name, suite=suite, title=name, seed=7, runner=runner,
        gates=tuple(gates), bands=bands or {}, **kw,
    )


class TestBand:
    def test_exact_by_default(self):
        band = Band()
        assert band.classify(10.0, 10.0) == "ok"
        assert band.classify(10.0, 10.0001) == "regression"

    def test_relative_tolerance(self):
        band = Band(rel=0.1)
        assert band.classify(100.0, 109.0) == "ok"
        assert band.classify(100.0, 111.0) == "regression"

    def test_absolute_tolerance_wins_near_zero(self):
        band = Band(rel=0.1, abs_tol=0.5)
        assert band.classify(0.0, 0.4) == "ok"
        assert band.classify(0.0, 0.6) == "regression"

    def test_direction_up_bad(self):
        band = Band(rel=0.05, direction="up_bad")
        assert band.classify(1.0, 1.2) == "regression"
        assert band.classify(1.0, 0.5) == "improvement"

    def test_direction_down_bad(self):
        band = Band(rel=0.05, direction="down_bad")
        assert band.classify(4.0, 3.0) == "regression"
        assert band.classify(4.0, 5.0) == "improvement"

    def test_round_trip(self):
        band = Band(rel=0.02, abs_tol=1.0, direction="up_bad")
        assert Band.from_dict(band.to_dict()) == band

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            Band(rel=-1.0)
        with pytest.raises(WorkloadError):
            Band(direction="sideways")


class TestGate:
    def test_holds(self):
        assert Gate("g", "m", ">=", 2.0).holds(2.0)
        assert not Gate("g", "m", ">=", 2.0).holds(1.99)
        assert Gate("g", "m", "<=", 2.0).holds(2.0)
        assert not Gate("g", "m", "<=", 2.0).holds(2.01)

    def test_invalid_op(self):
        with pytest.raises(WorkloadError):
            Gate("g", "m", "==", 1.0)


class TestBenchSpec:
    def test_registration_uniqueness(self):
        with temporary_registry():
            register_spec(_spec())
            with pytest.raises(WorkloadError):
                register_spec(_spec())

    def test_quick_profile_overlays_params(self):
        spec = _spec(params={"a": 1, "b": 2}, quick_params={"b": 9})
        assert spec.effective_params("full") == {"a": 1, "b": 2}
        assert spec.effective_params("quick") == {"a": 1, "b": 9}
        with pytest.raises(WorkloadError):
            spec.effective_params("medium")

    def test_band_pattern_first_match_wins(self):
        up = Band(rel=0.1, direction="up_bad")
        spec = _spec(bands={"tick_*": up}, default_band=Band())
        assert spec.band_for("tick_ratio_drop") == up
        assert spec.band_for("rows") == Band()

    def test_gate_bound_lookup(self):
        spec = _spec(gates=[Gate("g", "m", ">=", 3.5)])
        assert spec.gate_bound("g") == 3.5
        with pytest.raises(WorkloadError):
            spec.gate_bound("nope")

    def test_run_rejects_non_finite_metrics(self):
        def bad_runner(params, wallclock):
            return SpecResult(metrics={"m": float("nan")})

        spec = _spec()
        spec.runner = bad_runner
        with pytest.raises(WorkloadError):
            spec.run()

    def test_run_rejects_bool_metrics(self):
        def bad_runner(params, wallclock):
            return SpecResult(metrics={"m": True})

        spec = _spec()
        spec.runner = bad_runner
        with pytest.raises(WorkloadError):
            spec.run()


class TestSelection:
    def test_select_by_suite_and_name(self):
        with temporary_registry():
            register_spec(_spec("a1", suite="x"))
            register_spec(_spec("a2", suite="y"))
            register_spec(_spec("a3", suite="x"))
            assert [s.name for s in select_specs()] == ["a1", "a2", "a3"]
            assert [s.name for s in select_specs(suites=["x"])] == [
                "a1", "a3",
            ]
            assert [s.name for s in select_specs(names=["a2"])] == ["a2"]
            with pytest.raises(WorkloadError):
                select_specs(suites=["z"])
            with pytest.raises(WorkloadError):
                select_specs(names=["missing"])


class TestRealRegistry:
    def test_all_paper_and_infra_specs_registered(self):
        names = list_specs()
        for i in range(1, 29):
            assert f"e{i:02d}" in names, f"e{i:02d} missing"
        assert "e03b" in names and "e21b" in names
        assert len(names) == 30

    def test_suites(self):
        assert list_suites() == [
            "boolean", "extension", "infra", "minmax", "open_problem",
            "scale", "width_impl",
        ]

    def test_every_spec_has_a_quick_story_and_gates(self):
        for name in list_specs():
            spec = get_spec(name)
            assert spec.gates, name
            # quick params only override declared/defaulted keys
            quick = spec.effective_params("quick")
            assert isinstance(quick, dict)

    def test_seed_determinism_same_spec_twice(self):
        spec = get_spec("e06")
        first = spec.run(profile="quick")
        second = spec.run(profile="quick")
        assert first.metrics == second.metrics
        assert first.digests == second.digests
