"""The committed BENCH trajectory stays schema-valid and canonical."""

import json
import math

import pytest

from repro.bench.registry import list_specs
from repro.bench.schema import validate_snapshot
from repro.bench.snapshot import (
    SNAPSHOT_SCHEMA,
    dumps_snapshot,
    latest_snapshot_path,
    list_snapshots,
    load_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.errors import WorkloadError


@pytest.fixture(scope="module")
def committed():
    path = latest_snapshot_path()
    assert path is not None, "no committed BENCH_*.json snapshot"
    return load_snapshot(path)


class TestCommittedSnapshot:
    def test_history_is_nonempty_and_sorted(self):
        paths = list_snapshots()
        assert paths
        assert paths == sorted(paths)

    def test_schema_version(self, committed):
        assert committed["schema"] == SNAPSHOT_SCHEMA

    def test_structurally_valid(self, committed):
        assert validate_snapshot(committed) == []

    def test_covers_every_registered_spec(self, committed):
        assert sorted(committed["specs"]) == list_specs()

    def test_canonical_bytes(self, committed):
        # The file on disk is exactly the canonical serialization:
        # sorted keys, two-space indent, trailing newline.
        path = latest_snapshot_path()
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == dumps_snapshot(committed)

    def test_no_nan_or_inf_anywhere(self, committed):
        def walk(value):
            if isinstance(value, dict):
                for v in value.values():
                    walk(v)
            elif isinstance(value, list):
                for v in value:
                    walk(v)
            elif isinstance(value, float):
                assert math.isfinite(value)

        walk(committed)

    def test_every_deterministic_gate_passed(self, committed):
        for name, entry in committed["specs"].items():
            for gate_name, gate in entry["gates"].items():
                if gate["skipped"]:
                    continue
                assert gate["passed"] is True, (name, gate_name)


class TestSchemaValidator:
    def test_rejects_non_object(self):
        assert validate_snapshot([]) == ["snapshot root is not an object"]

    def test_reports_missing_keys(self):
        problems = validate_snapshot({})
        assert any("'specs'" in p for p in problems)
        assert any("'date'" in p for p in problems)

    def test_rejects_bad_date_profile_and_metrics(self, committed):
        doc = json.loads(json.dumps(committed))
        doc["date"] = "August 8"
        doc["profile"] = "leisurely"
        first = next(iter(doc["specs"]))
        doc["specs"][first]["metrics"]["bad"] = None
        problems = validate_snapshot(doc)
        assert any("YYYY-MM-DD" in p for p in problems)
        assert any("leisurely" in p for p in problems)
        assert any("'bad'" in p for p in problems)

    def test_rejects_value_on_skipped_gate(self, committed):
        doc = json.loads(json.dumps(committed))
        name = next(iter(doc["specs"]))
        gates = doc["specs"][name]["gates"]
        gate = gates[next(iter(gates))]
        gate.update(skipped=True, value=1.0, passed=None)
        assert any(
            "value set on a skipped gate" in p
            for p in validate_snapshot(doc)
        )


class TestSnapshotIo:
    def test_path_validates_date(self, tmp_path):
        with pytest.raises(WorkloadError):
            snapshot_path("not-a-date", directory=str(tmp_path))
        path = snapshot_path("2026-08-08", directory=str(tmp_path))
        assert path.endswith("BENCH_2026-08-08.json")

    def test_write_then_load_round_trip(self, tmp_path, committed):
        path = snapshot_path("2026-08-08", directory=str(tmp_path))
        write_snapshot(committed, path)
        assert load_snapshot(path) == committed

    def test_load_rejects_nan_tokens(self, tmp_path):
        path = tmp_path / "BENCH_2026-01-01.json"
        path.write_text('{"schema": "repro-bench/v1", "x": NaN}')
        with pytest.raises(WorkloadError):
            load_snapshot(str(path))

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_2026-01-01.json"
        path.write_text("{nope")
        with pytest.raises(WorkloadError):
            load_snapshot(str(path))

    def test_dumps_rejects_nan_documents(self):
        with pytest.raises(ValueError):
            dumps_snapshot({"x": float("nan")})
