"""Unit tests for the snapshot diff engine."""

import copy

from repro.bench.diff import diff_snapshots, render_report
from repro.bench.snapshot import SNAPSHOT_SCHEMA


def _snapshot():
    return {
        "schema": SNAPSHOT_SCHEMA,
        "date": "2026-01-01",
        "profile": "quick",
        "wallclock": False,
        "specs": {
            "demo": {
                "suite": "s",
                "title": "demo",
                "seed": 1,
                "params": {"n": 10},
                "metrics": {"rows": 3.0, "speedup": 4.0,
                            "overhead": 1.1},
                "digests": {"log": "abc"},
                "gates": {
                    "g": {"metric": "speedup", "op": ">=",
                          "bound": 2.0, "wallclock": False,
                          "skipped": False, "value": 4.0,
                          "passed": True},
                },
                "bands": {
                    "rows": {"rel": 0.0, "abs": 0.0,
                             "direction": "any"},
                    "speedup": {"rel": 0.05, "abs": 0.0,
                                "direction": "down_bad"},
                    "overhead": {"rel": 0.05, "abs": 0.0,
                                 "direction": "up_bad"},
                },
                "wallclock_metrics": {},
            },
        },
    }


class TestDiff:
    def test_identical_snapshots_are_clean(self):
        report = diff_snapshots(_snapshot(), _snapshot())
        assert report.ok and report.exit_code == 0
        assert report.compared_metrics == 3
        assert "diff: OK" in render_report(report)

    def test_regression_beyond_band_fails(self):
        new = _snapshot()
        new["specs"]["demo"]["metrics"]["speedup"] = 3.0
        report = diff_snapshots(_snapshot(), new)
        assert not report.ok and report.exit_code == 1
        assert any("speedup" in r for r in report.regressions)
        assert "diff: FAILED" in render_report(report)

    def test_drift_within_band_passes(self):
        new = _snapshot()
        new["specs"]["demo"]["metrics"]["speedup"] = 3.9
        report = diff_snapshots(_snapshot(), new)
        assert report.ok

    def test_improvement_in_good_direction(self):
        new = _snapshot()
        new["specs"]["demo"]["metrics"]["speedup"] = 8.0
        report = diff_snapshots(_snapshot(), new)
        assert report.ok
        assert any("speedup" in i for i in report.improvements)

    def test_count_drift_is_always_a_regression(self):
        new = _snapshot()
        new["specs"]["demo"]["metrics"]["rows"] = 4.0
        report = diff_snapshots(_snapshot(), new)
        assert not report.ok

    def test_new_metric_is_an_addition(self):
        new = _snapshot()
        new["specs"]["demo"]["metrics"]["fresh"] = 1.0
        report = diff_snapshots(_snapshot(), new)
        assert report.ok
        assert any("fresh" in a for a in report.additions)

    def test_removed_metric_fails_unless_allowed(self):
        new = _snapshot()
        del new["specs"]["demo"]["metrics"]["overhead"]
        assert not diff_snapshots(_snapshot(), new).ok
        allowed = diff_snapshots(_snapshot(), new, allow_removed=True)
        assert allowed.ok
        assert any("overhead" in n for n in allowed.notes)

    def test_removed_spec_fails_unless_allowed(self):
        new = _snapshot()
        new["specs"] = {}
        assert diff_snapshots(_snapshot(), new).exit_code == 1
        assert diff_snapshots(
            _snapshot(), new, allow_removed=True
        ).ok

    def test_digest_change_is_a_regression(self):
        new = _snapshot()
        new["specs"]["demo"]["digests"]["log"] = "zzz999"
        report = diff_snapshots(_snapshot(), new)
        assert not report.ok
        assert any("determinism" in r for r in report.regressions)

    def test_newly_failing_gate_is_a_regression(self):
        new = _snapshot()
        gate = new["specs"]["demo"]["gates"]["g"]
        gate.update(value=1.0, passed=False)
        report = diff_snapshots(_snapshot(), new)
        assert not report.ok
        assert any("previously passed" in r for r in report.regressions)

    def test_skipped_gates_never_fail_the_diff(self):
        old = _snapshot()
        new = _snapshot()
        for doc in (old, new):
            doc["specs"]["demo"]["gates"]["g"].update(
                skipped=True, value=None, passed=None
            )
        assert diff_snapshots(old, new).ok

    def test_profile_mismatch_is_fatal(self):
        new = _snapshot()
        new["profile"] = "full"
        report = diff_snapshots(_snapshot(), new)
        assert report.exit_code == 2
        assert any("profile mismatch" in f for f in report.fatal)

    def test_schema_mismatch_is_fatal(self):
        new = _snapshot()
        new["schema"] = "repro-bench/v999"
        assert diff_snapshots(_snapshot(), new).exit_code == 2

    def test_new_snapshots_bands_win(self):
        # Tightening a band in NEW takes effect on this very diff.
        old = _snapshot()
        old["specs"]["demo"]["metrics"]["speedup"] = 4.0
        new = copy.deepcopy(old)
        new["specs"]["demo"]["metrics"]["speedup"] = 3.9
        new["specs"]["demo"]["bands"]["speedup"]["rel"] = 0.001
        assert not diff_snapshots(old, new).ok

    def test_param_change_is_a_note(self):
        new = _snapshot()
        new["specs"]["demo"]["params"] = {"n": 99}
        report = diff_snapshots(_snapshot(), new)
        assert report.ok
        assert any("params changed" in n for n in report.notes)
