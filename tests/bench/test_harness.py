"""Unit tests for the benchmark harness."""

import os

import pytest

from repro.bench import ExperimentTable, list_experiments, run_experiment
from repro.errors import WorkloadError


class TestExperimentTable:
    def test_add_row_and_column(self):
        t = ExperimentTable("x", "demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row(3, 4.0)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2.5, 4.0]

    def test_row_arity_checked(self):
        t = ExperimentTable("x", "demo", ["a", "b"])
        with pytest.raises(WorkloadError):
            t.add_row(1)

    def test_render_contains_everything(self):
        t = ExperimentTable("x", "demo title", ["col"])
        t.add_row(42)
        t.add_note("a note")
        out = t.render()
        assert "demo title" in out
        assert "42" in out
        assert "note: a note" in out

    def test_save_funnels_into_table_store(self, tmp_path):
        from repro.bench.snapshot import load_table_entry, table_store_path

        t = ExperimentTable("xsave", "demo", ["col"])
        t.add_row(7)
        path = t.save(directory=str(tmp_path))
        assert path == table_store_path(str(tmp_path))
        assert os.path.exists(path)
        entry = load_table_entry("xsave", str(tmp_path))
        assert "7" in entry["render"]
        assert entry["csv"].splitlines()[0] == "col"
        # A second table lands in the same store file.
        t2 = ExperimentTable("other", "demo2", ["col"])
        t2.add_row(9)
        assert t2.save(directory=str(tmp_path)) == path
        assert load_table_entry("xsave", str(tmp_path)) == entry
        assert "9" in load_table_entry("other", str(tmp_path))["render"]

    def test_to_csv(self):
        t = ExperimentTable("x", "demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row(3, 4.0)
        lines = t.to_csv().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert len(lines) == 3


class TestRegistry:
    def test_all_experiments_registered(self):
        names = list_experiments()
        for expected in [f"e{i:02d}" for i in range(1, 17)]:
            assert expected in names
        assert "e03b" in names

    def test_unknown_experiment(self):
        with pytest.raises(WorkloadError):
            run_experiment("nope", save=False)

    def test_run_small_experiment(self):
        table = run_experiment("e06", save=False)
        assert table.rows

    def test_param_overrides_shrink_the_workload(self):
        full = run_experiment("e04", save=False, trials=6)
        quick = run_experiment("e04", save=False, trials=3)
        assert full.column("trials") == [6, 6, 6]
        assert quick.column("trials") == [3, 3, 3]
