"""Unit tests for the registry runner and snapshot documents."""

import io

import pytest

from repro.bench.registry import (
    Band,
    BenchSpec,
    Gate,
    SpecResult,
    register_spec,
    temporary_registry,
)
from repro.bench.runner import failed_gates, run_benchmarks
from repro.bench.schema import validate_snapshot
from repro.bench.snapshot import dumps_snapshot
from repro.errors import WorkloadError


def _register_demo(metric_value=4.0, wallclock_value=9.0):
    def runner(params, wallclock):
        wc = {"speed": wallclock_value} if wallclock else {}
        return SpecResult(
            metrics={"m": metric_value, "rows": 3.0},
            digests={"log": "abc123"},
            wallclock_metrics=wc,
        )

    register_spec(BenchSpec(
        name="demo", suite="s", title="demo spec", seed=1,
        runner=runner,
        params={"n": 10}, quick_params={"n": 4},
        gates=(
            Gate("m_ok", "m", ">=", 2.0),
            Gate("fast", "speed", ">=", 5.0, wallclock=True),
        ),
        bands={"m": Band(rel=0.05)},
    ))


class TestRunner:
    def test_snapshot_is_valid_and_complete(self):
        with temporary_registry():
            _register_demo()
            doc = run_benchmarks(
                date="2026-01-01", progress=io.StringIO()
            )
        assert validate_snapshot(doc) == []
        entry = doc["specs"]["demo"]
        assert entry["params"] == {"n": 10}
        assert entry["metrics"] == {"m": 4.0, "rows": 3.0}
        assert entry["digests"] == {"log": "abc123"}
        assert entry["bands"]["m"] == {
            "rel": 0.05, "abs": 0.0, "direction": "any",
        }

    def test_quick_profile_params_recorded(self):
        with temporary_registry():
            _register_demo()
            doc = run_benchmarks(
                profile="quick", date="2026-01-01",
                progress=io.StringIO(),
            )
        assert doc["profile"] == "quick"
        assert doc["specs"]["demo"]["params"] == {"n": 4}

    def test_wallclock_gate_skipped_without_wallclock(self):
        with temporary_registry():
            _register_demo()
            doc = run_benchmarks(
                date="2026-01-01", progress=io.StringIO()
            )
        gate = doc["specs"]["demo"]["gates"]["fast"]
        assert gate["skipped"] is True
        assert gate["value"] is None and gate["passed"] is None
        assert failed_gates(doc) == []

    def test_wallclock_gate_skipped_in_quick_profile(self):
        with temporary_registry():
            _register_demo()
            doc = run_benchmarks(
                profile="quick", wallclock=True, date="2026-01-01",
                progress=io.StringIO(),
            )
        assert doc["specs"]["demo"]["gates"]["fast"]["skipped"] is True
        # but the wallclock metrics themselves are recorded
        assert doc["specs"]["demo"]["wallclock_metrics"] == {
            "speed": 9.0,
        }

    def test_wallclock_gate_evaluated_in_full_profile(self):
        with temporary_registry():
            _register_demo(wallclock_value=4.0)
            doc = run_benchmarks(
                wallclock=True, date="2026-01-01",
                progress=io.StringIO(),
            )
        gate = doc["specs"]["demo"]["gates"]["fast"]
        assert gate["skipped"] is False and gate["passed"] is False
        assert failed_gates(doc) == ["demo:fast"]

    def test_failed_deterministic_gate_reported(self):
        with temporary_registry():
            _register_demo(metric_value=1.0)
            doc = run_benchmarks(
                date="2026-01-01", progress=io.StringIO()
            )
        assert failed_gates(doc) == ["demo:m_ok"]

    def test_gate_on_missing_metric_is_an_error(self):
        with temporary_registry():
            def runner(params, wallclock):
                return SpecResult(metrics={"other": 1.0})

            register_spec(BenchSpec(
                name="demo", suite="s", title="t", seed=1,
                runner=runner,
                gates=(Gate("g", "missing", ">=", 1.0),),
            ))
            with pytest.raises(WorkloadError):
                run_benchmarks(
                    date="2026-01-01", progress=io.StringIO()
                )

    def test_empty_selection_is_an_error(self):
        with temporary_registry():
            with pytest.raises(WorkloadError):
                run_benchmarks(date="2026-01-01")

    def test_same_seed_runs_serialize_byte_identically(self):
        with temporary_registry():
            _register_demo()
            doc1 = run_benchmarks(
                date="2026-01-01", progress=io.StringIO()
            )
            doc2 = run_benchmarks(
                date="2026-01-01", progress=io.StringIO()
            )
        assert dumps_snapshot(doc1) == dumps_snapshot(doc2)
