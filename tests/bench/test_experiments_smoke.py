"""Smoke tests for cheap experiment functions (full runs live in
benchmarks/; these keep the experiment code importable and sane under
plain `pytest tests/`)."""

import pytest

from repro.bench import run_experiment


@pytest.fixture(scope="module")
def e01():
    return run_experiment("e01", save=False)


@pytest.fixture(scope="module")
def e16():
    return run_experiment("e16", save=False)


class TestE01Smoke:
    def test_bound_respected(self, e01):
        for bound, s0 in zip(e01.column("bound d^(n/2)"),
                             e01.column("S forced-0")):
            assert s0 == bound

    def test_has_both_branchings(self, e01):
        assert {2, 3} <= set(e01.column("d"))


class TestE16Smoke:
    def test_families_present(self, e16):
        assert {"iid p*", "worst-case", "all-ones"} == \
            set(e16.column("family"))

    def test_width0_speedup_is_one(self, e16):
        for row in e16.rows:
            if row[2] == 0:
                assert row[5] == 1.0

    def test_notes_attached(self, e16):
        assert e16.notes


class TestRenderStability:
    def test_render_is_deterministic(self, e01):
        assert e01.render() == e01.render()

    def test_render_parses_back(self, e01):
        lines = e01.render().splitlines()
        # header + separator + one line per row (+ notes).
        assert len(lines) >= 2 + len(e01.rows)
