"""Gate parity: registry specs and standalone benchmarks agree.

The standalone suite under ``benchmarks/`` imports every acceptance
bound from the registry (:func:`repro.bench.specs.gate_bound`), so
disagreement is impossible by construction; these tests pin the
contract — the bounds carry their historical values, the deterministic
gated workloads produce the same verdict through both paths, and
wall-clock gates are structurally confined to full-profile
``--wallclock`` runs.
"""

import pytest

from repro.bench.registry import get_spec
from repro.bench.specs import gate_bound, metrics_from_table
from repro.bench.harness import run_experiment


class TestBoundsAreTheHistoricalBars:
    """The bars the gated bench files asserted before the registry."""

    def test_e21b_frontier_speedup(self):
        assert gate_bound("e21b", "incremental_speedup") == 5.0

    def test_e23_fault_overhead(self):
        for kind in ("drop", "duplicate", "delay", "reorder", "crash",
                     "stall"):
            assert gate_bound("e23", f"overhead_{kind}") == 2.0

    def test_e24_telemetry_overhead(self):
        assert gate_bound("e24", "null_overhead") == 1.05
        assert gate_bound("e24", "inmemory_overhead") == 1.5

    def test_e25_serve(self):
        assert gate_bound("e25", "warm_speedup") == 3.0
        assert gate_bound("e25", "zipf_dedup") == pytest.approx(1 / 3)

    def test_unknown_gate_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            gate_bound("e23", "nope")


class TestDeterministicGatedSpecsPassBothWays:
    """Run the registry path; its verdicts must be the standalone ones."""

    def test_e23_registry_run_matches_standalone_verdict(self):
        spec = get_spec("e23")
        result = spec.run(profile="quick")
        for gate in spec.gates:
            value = result.metrics[gate.metric]
            # the standalone file asserts `med <= gate_bound(...)`;
            # the registry asserts Gate.holds — same comparison.
            standalone = (
                value >= gate.bound if gate.op == ">="
                else value <= gate.bound
            )
            assert gate.holds(value) == standalone
            assert gate.holds(value), (gate.name, value)

    def test_e21b_step_identity_via_registry(self):
        spec = get_spec("e21b")
        result = spec.run(profile="quick")
        assert result.metrics["backends_identical"] == 1.0
        # no wall-clock requested -> no wall-clock metrics at all
        assert result.wallclock_metrics == {}

    def test_e24_step_identity_via_registry(self):
        spec = get_spec("e24")
        result = spec.run(profile="quick")
        assert result.metrics["recorders_identical"] == 1.0

    def test_e25_determinism_and_dedup_via_registry(self):
        spec = get_spec("e25")
        result = spec.run(profile="quick")
        assert result.metrics["logs_identical"] == 1.0
        assert result.metrics["unique_frac"] <= gate_bound(
            "e25", "zipf_dedup"
        )
        assert "response_log" in result.digests

    def test_flipping_a_value_flips_both_verdicts(self):
        spec = get_spec("e23")
        gate = next(g for g in spec.gates if g.name == "overhead_drop")
        eps = 1e-9
        assert gate.holds(gate.bound - eps)
        assert not gate.holds(gate.bound + eps)


class TestTableSpecParity:
    """A table spec's metrics from run_experiment == from the registry."""

    def test_e06_same_metrics_both_paths(self):
        spec = get_spec("e06")
        via_registry = spec.run(profile="full").metrics
        table = run_experiment("e06", save=False)
        via_table = metrics_from_table("e06", table)
        assert via_registry == via_table

    def test_e04_quick_same_metrics_both_paths(self):
        spec = get_spec("e04")
        via_registry = spec.run(profile="quick").metrics
        table = run_experiment(
            "e04", save=False, **spec.effective_params("quick")
        )
        assert metrics_from_table("e04", table) == via_registry


class TestWallclockGateDiscipline:
    def test_every_wallclock_gate_is_marked(self):
        # Wall-clock gates exist only on the infra specs, and every
        # wall-clock metric gate is flagged so the runner can skip it.
        for name in ("e21b", "e24", "e25"):
            spec = get_spec(name)
            assert any(g.wallclock for g in spec.gates), name

    def test_paper_specs_have_no_wallclock_gates(self):
        from repro.bench.registry import list_specs

        for name in list_specs():
            spec = get_spec(name)
            if spec.suite == "infra":
                continue
            assert all(not g.wallclock for g in spec.gates), name
