"""Smoke tests: the example scripts' entry points run end to end.

Only the fast examples are exercised directly; the slower ones
(speed-up sweep, Connect-k self-play) are covered by equivalent
reduced-size flows in test_end_to_end.py.
"""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))),
    "examples",
)


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "theorem_proving",
    "game_playing",
])
def test_example_main_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out.splitlines()) > 3


def test_all_examples_have_main():
    for fname in os.listdir(EXAMPLES_DIR):
        if fname.endswith(".py"):
            module = load_example(fname[:-3])
            assert hasattr(module, "main"), fname
