"""End-to-end flows mirroring the example scripts (small sizes)."""

import numpy as np

from repro.core import parallel_solve, sequential_solve, team_solve
from repro.core.nodeexpansion import (
    n_parallel_alpha_beta,
    n_sequential_alpha_beta,
    n_sequential_solve,
)
from repro.games import Nim, TicTacToe, game_tree, win_loss_tree
from repro.logic import KnowledgeBase, goal_tree
from repro.trees.generators import golden_ratio_instance


class TestQuickstartFlow:
    def test_three_algorithms_one_tree(self):
        tree = golden_ratio_instance(10, seed=2026)
        seq = sequential_solve(tree)
        team = team_solve(tree, 8)
        par = parallel_solve(tree, 1)
        assert seq.value == team.value == par.value
        assert par.num_steps <= seq.num_steps
        assert par.processors <= 11


class TestGamePlayingFlow:
    def test_best_move_search(self):
        game = TicTacToe()
        pos = game.initial_position()
        for move in (4, 0):
            pos = game.apply(pos, move)
        best_value = -2.0
        for move in game.moves(pos):
            child = game.apply(pos, move)
            seq = n_sequential_alpha_beta(game_tree(game, child))
            par = n_parallel_alpha_beta(game_tree(game, child), 1)
            assert seq.value == par.value
            best_value = max(best_value, seq.value)
        # Perfect play from this position is a draw for O... X already
        # holds the centre: X wins or draws.
        assert best_value >= 0.0

    def test_nim_table(self):
        for heaps, limit in [((3, 5), None), ((8,), 3), ((2, 2), None)]:
            game = Nim(heaps, max_take=limit)
            res = n_sequential_solve(win_loss_tree(game))
            assert bool(res.value) == game.first_player_wins()


class TestTheoremProvingFlow:
    def test_layered_kb_parallel_prover(self):
        rng = np.random.default_rng(11)
        kb = KnowledgeBase()
        for a in range(6):
            if rng.random() < 0.5:
                kb.add_fact(f"l0_{a}")
        for layer in range(1, 4):
            for a in range(6):
                for _ in range(2):
                    body = [
                        f"l{layer - 1}_{int(rng.integers(6))}"
                        for _ in range(int(rng.integers(1, 3)))
                    ]
                    kb.add_rule(f"l{layer}_{a}", body)
        closure = kb.forward_closure()
        for a in range(6):
            goal = f"l3_{a}"
            seq = sequential_solve(goal_tree(kb, goal))
            par = parallel_solve(goal_tree(kb, goal), 1)
            assert bool(seq.value) == bool(par.value) == \
                (goal in closure)
            assert par.num_steps <= seq.num_steps
