"""Heavier integration stress tests (still seconds, not minutes)."""

import numpy as np

from repro.analysis import skeleton_of
from repro.core import parallel_solve, sequential_solve
from repro.core.fastpath import (
    uniform_evaluated_leaf_mask,
    uniform_sequential_cost,
)
from repro.simulator import simulate
from repro.trees import exact_value
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


class TestSimulatorStress:
    def test_tall_instances(self):
        bias = level_invariant_bias(2)
        for n, seed in ((11, 0), (12, 1), (13, 2)):
            t = iid_boolean(2, n, bias, seed=seed)
            res = simulate(t)
            assert res.value == exact_value(t)
            # Ticks within a small multiple of the ideal model.
            par = parallel_solve(t, 1)
            assert res.ticks <= 6 * par.num_steps + 20

    def test_many_small_instances(self):
        rng = np.random.default_rng(0)
        for _ in range(40):
            n = int(rng.integers(1, 8))
            p = float(rng.random())
            t = iid_boolean(2, n, p, seed=int(rng.integers(10_000)))
            phys = int(rng.integers(1, n + 2))
            res = simulate(t, physical_processors=phys)
            assert res.value == exact_value(t)


class TestFastpathVsSkeleton:
    def test_leaf_mask_matches_skeleton_leaves(self):
        for seed in range(5):
            t = iid_boolean(2, 9, 0.4, seed=seed)
            mask = uniform_evaluated_leaf_mask(t)
            skel = skeleton_of(t)
            assert int(mask.sum()) == skel.num_leaves()

    def test_cost_matches_skeleton_leaf_count(self):
        for seed in range(5):
            t = iid_boolean(3, 5, 0.35, seed=seed)
            _, cost = uniform_sequential_cost(t)
            assert cost == skeleton_of(t).num_leaves()
            assert cost == sequential_solve(t).num_steps
