"""Integration tests tying the three execution substrates together:
leaf-evaluation model, node-expansion model, and the message-passing
machine must tell one consistent story on the same instances."""

import pytest

from repro.core import parallel_solve, sequential_solve
from repro.core.nodeexpansion import n_parallel_solve, n_sequential_solve
from repro.core.randomized import r_parallel_solve, r_sequential_solve
from repro.simulator import simulate
from repro.trees import exact_value, lazy_view
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module", params=[0, 1, 2])
def tree(request):
    return iid_boolean(2, 9, level_invariant_bias(2),
                       seed=request.param)


class TestConsistentStory:
    def test_all_models_same_value(self, tree):
        truth = exact_value(tree)
        assert sequential_solve(tree).value == truth
        assert parallel_solve(tree, 1).value == truth
        assert n_sequential_solve(tree).value == truth
        assert n_parallel_solve(tree, 1).value == truth
        assert simulate(tree).value == truth
        assert r_sequential_solve(tree, 7).value == truth
        assert r_parallel_solve(tree, 1, seed=7).value == truth

    def test_cost_ordering_across_models(self, tree):
        # Leaf-model sequential cost <= node-model sequential cost
        # (expansions include internal nodes), and the machine sits
        # between the ideal parallel model and the sequential one.
        s_leaf = sequential_solve(tree).num_steps
        s_node = n_sequential_solve(tree).num_steps
        p_node = n_parallel_solve(tree, 1).num_steps
        ticks = simulate(tree).ticks
        assert s_leaf <= s_node
        assert p_node <= s_node
        assert p_node <= ticks

    def test_node_model_leaf_work_matches_leaf_model(self, tree):
        exp = n_sequential_solve(tree)
        leaf_work = sum(1 for v in exp.evaluated if tree.is_leaf(v))
        assert leaf_work == sequential_solve(tree).num_steps

    def test_lazy_generation_is_partial(self, tree):
        view = lazy_view(tree)
        n_parallel_solve(view, 1)
        # Parallel search with pruning should not generate everything
        # on a balanced random instance.
        assert view.generated_nodes() <= tree.num_nodes()


class TestParallelismAccounting:
    def test_speedup_chain(self, tree):
        s = sequential_solve(tree).num_steps
        p1 = parallel_solve(tree, 1).num_steps
        p2 = parallel_solve(tree, 2).num_steps
        assert s >= p1 >= p2 >= 1

    def test_simulator_expansions_superset_of_ideal(self, tree):
        # The machine may redo work due to pre-emption churn, so its
        # expansion count is at least the ideal model's total work.
        ideal = n_parallel_solve(tree, 1).total_work
        assert simulate(tree).expansions >= ideal


class TestMachineVsIdealStress:
    """Differential stress: the Section-7 machine against ideal
    N-Parallel SOLVE width-1, across many random instances, with the
    ideal run computed by both frontier backends."""

    @pytest.mark.parametrize("height", [4, 6, 8])
    def test_machine_dominates_ideal_model(self, height):
        for seed in range(8):
            t = iid_boolean(2, height, level_invariant_bias(2),
                            seed=seed)
            truth = exact_value(t)
            rescan = n_parallel_solve(
                t, 1, keep_batches=True, backend="rescan"
            )
            incremental = n_parallel_solve(
                t, 1, keep_batches=True, backend="incremental"
            )
            assert rescan.value == incremental.value == truth
            assert rescan.trace.degrees == incremental.trace.degrees
            assert rescan.trace.batches == incremental.trace.batches
            sim = simulate(t)
            assert sim.value == truth
            # The machine implements the same schedule with real
            # message passing and pre-emption churn, so its totals
            # track the ideal model's within a small constant factor
            # (both sides are deterministic; the band is the measured
            # envelope on these instances with margin).  Its different
            # interleaving may occasionally find a slightly *cheaper*
            # proof, so the lower edge sits below 1.
            assert 0.8 * incremental.total_work <= sim.expansions \
                <= 2.0 * incremental.total_work
            assert incremental.num_steps <= sim.ticks \
                <= 3.0 * incremental.num_steps
