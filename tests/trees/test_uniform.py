"""Unit tests for the implicit array-backed UniformTree."""

import numpy as np
import pytest

from repro.errors import TreeStructureError
from repro.trees import UniformTree, exact_value
from repro.types import Gate, TreeKind


@pytest.fixture
def t23():
    # d = 2, n = 3: 8 leaves, 15 nodes.
    return UniformTree(2, 3, np.arange(8) % 2)


class TestIndexing:
    def test_children_formula(self, t23):
        assert t23.children(0) == (1, 2)
        assert t23.children(2) == (5, 6)

    def test_parent_inverse_of_children(self, t23):
        for node in range(t23.num_nodes()):
            for child in t23.children(node):
                assert t23.parent(child) == node

    def test_depth_by_level(self, t23):
        assert t23.depth(0) == 0
        assert t23.depth(1) == 1
        assert t23.depth(6) == 2
        assert t23.depth(14) == 3

    def test_leaves_are_last_level(self, t23):
        assert t23.first_leaf_id() == 7
        assert all(t23.is_leaf(i) for i in range(7, 15))
        assert not any(t23.is_leaf(i) for i in range(7))

    def test_leaf_values_match_array(self, t23):
        for i in range(8):
            assert t23.leaf_value(7 + i) == i % 2

    def test_leaf_index(self, t23):
        assert t23.leaf_index(7) == 0
        assert t23.leaf_index(14) == 7

    def test_leaf_value_on_internal_raises(self, t23):
        with pytest.raises(TreeStructureError):
            t23.leaf_value(3)

    def test_counts(self, t23):
        assert t23.num_nodes() == 15
        assert t23.num_leaves() == 8
        assert t23.height() == 3

    def test_ternary_indexing(self):
        t = UniformTree(3, 2, np.zeros(9))
        assert t.children(0) == (1, 2, 3)
        assert t.children(1) == (4, 5, 6)
        assert t.parent(6) == 1
        assert t.depth(12) == 2

    def test_unary_tree(self):
        t = UniformTree(1, 4, np.array([1]))
        assert t.num_nodes() == 5
        assert t.children(0) == (1,)
        # NOR chain of odd length complements the leaf.
        assert exact_value(t) == 1

    def test_height_zero(self):
        t = UniformTree(2, 0, np.array([1]))
        assert t.is_leaf(0)
        assert exact_value(t) == 1


class TestConstruction:
    def test_wrong_leaf_count(self):
        with pytest.raises(TreeStructureError):
            UniformTree(2, 3, np.zeros(7))

    def test_non_boolean_values_rejected(self):
        with pytest.raises(TreeStructureError):
            UniformTree(2, 1, np.array([0, 2]))

    def test_bad_branching(self):
        with pytest.raises(TreeStructureError):
            UniformTree(0, 2, np.zeros(0))

    def test_bad_height(self):
        with pytest.raises(TreeStructureError):
            UniformTree(2, -1, np.zeros(1))

    def test_minmax_values_cast_to_float(self):
        t = UniformTree(2, 1, np.array([3, 4]), kind=TreeKind.MINMAX)
        assert isinstance(t.leaf_value(1), float)

    def test_gate_scheme(self):
        t = UniformTree(2, 2, np.zeros(4), gates=[Gate.OR, Gate.AND])
        assert t.gate(0) is Gate.OR
        assert t.gate(1) is Gate.AND

    def test_validate(self, t23):
        t23.validate()

    def test_exact_value_matches_numpy_reduction(self):
        rng = np.random.default_rng(7)
        leaves = (rng.random(16) < 0.5).astype(int)
        t = UniformTree(2, 4, leaves)
        # Manual NOR reduction level by level.
        level = leaves.copy()
        while len(level) > 1:
            level = 1 - np.maximum(level[0::2], level[1::2])
        assert exact_value(t) == level[0]
