"""Unit tests for the GameTree interface and exact evaluation."""

import pytest

from repro.errors import TreeStructureError
from repro.trees import ExplicitTree, exact_value, subtree_leaves
from repro.types import Gate, NodeType, TreeKind


@pytest.fixture
def tree():
    #        0 (NOR)
    #      /   \
    #     1     2 (NOR)
    #   [=1]   /  \
    #         3    4
    #       [=0]  [=1]
    return ExplicitTree.from_nested([1, [0, 1]])


class TestStructure:
    def test_root_is_zero(self, tree):
        assert tree.root == 0

    def test_children_of_root(self, tree):
        assert tree.children(0) == (1, 2)

    def test_leaf_detection(self, tree):
        assert tree.is_leaf(1)
        assert not tree.is_leaf(2)

    def test_leaf_values(self, tree):
        assert tree.leaf_value(1) == 1
        assert tree.leaf_value(3) == 0
        assert tree.leaf_value(4) == 1

    def test_depths(self, tree):
        assert tree.depth(0) == 0
        assert tree.depth(2) == 1
        assert tree.depth(3) == 2

    def test_parents(self, tree):
        assert tree.parent(0) is None
        assert tree.parent(3) == 2

    def test_arity(self, tree):
        assert tree.arity(0) == 2
        assert tree.arity(1) == 0

    def test_height(self, tree):
        assert tree.height() == 2

    def test_num_nodes_and_leaves(self, tree):
        assert tree.num_nodes() == 5
        assert tree.num_leaves() == 3


class TestNavigation:
    def test_ancestors_include_self(self, tree):
        assert list(tree.ancestors(3)) == [3, 2, 0]

    def test_path_from_root(self, tree):
        assert tree.path_from_root(4) == (0, 2, 4)

    def test_left_siblings(self, tree):
        assert tree.left_siblings(2) == (1,)
        assert tree.left_siblings(1) == ()
        assert tree.left_siblings(0) == ()

    def test_right_siblings(self, tree):
        assert tree.right_siblings(1) == (2,)
        assert tree.right_siblings(4) == ()

    def test_iter_leaves_left_to_right(self, tree):
        assert list(tree.iter_leaves()) == [1, 3, 4]

    def test_iter_nodes_breadth_first(self, tree):
        assert list(tree.iter_nodes()) == [0, 1, 2, 3, 4]

    def test_subtree_leaves(self, tree):
        assert list(subtree_leaves(tree, 2)) == [3, 4]


class TestSemantics:
    def test_node_type_alternates(self, tree):
        assert tree.node_type(0) is NodeType.MAX
        assert tree.node_type(2) is NodeType.MIN
        assert tree.node_type(3) is NodeType.MAX

    def test_opponent(self):
        assert NodeType.MAX.opponent is NodeType.MIN
        assert NodeType.MIN.opponent is NodeType.MAX

    def test_gate_default_nor(self, tree):
        assert tree.gate(0) is Gate.NOR

    def test_minmax_tree_has_no_gates(self):
        t = ExplicitTree.from_nested([1.0, 2.0], kind=TreeKind.MINMAX)
        with pytest.raises(TreeStructureError):
            t.gate(0)


class TestExactValue:
    def test_nor_example(self, tree):
        # NOR(1, NOR(0, 1)) = NOR(1, 0) = 0
        assert exact_value(tree) == 0

    def test_subtree_value(self, tree):
        assert exact_value(tree, 2) == 0

    def test_or_and_gates(self):
        t = ExplicitTree.from_nested(
            [[0, 1], [1, 1]], gates=[Gate.OR, Gate.AND]
        )
        # OR(AND(0,1), AND(1,1)) = OR(0, 1) = 1
        assert exact_value(t) == 1

    def test_minmax_value(self):
        t = ExplicitTree.from_nested(
            [[3.0, 1.0], [4.0, 2.0]], kind=TreeKind.MINMAX
        )
        # MAX(MIN(3,1), MIN(4,2)) = MAX(1, 2) = 2
        assert exact_value(t) == 2.0

    def test_single_leaf_tree(self):
        t = ExplicitTree([()], {0: 1})
        assert exact_value(t) == 1

    def test_deep_tree_no_recursion_error(self):
        # A path of single-child NOR nodes far beyond the recursion
        # limit: value alternates with depth.
        depth = 5000
        children = [(i + 1,) for i in range(depth)] + [()]
        t = ExplicitTree(children, {depth: 1})
        assert exact_value(t) in (0, 1)


class TestValidation:
    def test_valid_tree_passes(self, tree):
        tree.validate()

    def test_gate_outputs(self):
        assert Gate.NOR.output([0, 0]) == 1
        assert Gate.NOR.output([0, 1]) == 0
        assert Gate.OR.output([0, 1]) == 1
        assert Gate.AND.output([1, 1]) == 1
        assert Gate.AND.output([0, 1]) == 0
        assert Gate.NAND.output([1, 1]) == 0
        assert Gate.NAND.output([0, 1]) == 1

    def test_gate_on_no_children_raises(self):
        with pytest.raises(ValueError):
            Gate.NOR.output([])

    def test_gate_duals(self):
        assert Gate.AND.dual is Gate.OR
        assert Gate.NOR.dual is Gate.NAND
