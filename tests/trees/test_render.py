"""Unit tests for the ASCII renderers."""

from repro.core import parallel_solve
from repro.models import ExecutionTrace
from repro.telemetry import InMemoryRecorder
from repro.trees import ExplicitTree
from repro.trees.render import (
    render_schedule,
    render_span_timeline,
    render_tree,
)
from repro.types import TreeKind


class TestRenderTree:
    def test_boolean_tree_labels(self):
        t = ExplicitTree.from_nested([[1, 0], 1])
        out = render_tree(t)
        assert out.count("NOR") == 2
        assert "leaf 1" in out and "leaf 0" in out

    def test_minmax_tree_labels(self):
        t = ExplicitTree.from_nested([[1.0, 2.0], 3.0],
                                     kind=TreeKind.MINMAX)
        out = render_tree(t)
        assert "MAX" in out and "MIN" in out
        assert "leaf 3" in out

    def test_single_leaf(self):
        t = ExplicitTree([()], {0: 1})
        assert render_tree(t) == "leaf 1"

    def test_max_depth_elides(self):
        t = ExplicitTree.from_nested([[1, 0], [0, [1, 0]]])
        out = render_tree(t, max_depth=1)
        assert "..." in out

    def test_subtree_rendering(self):
        t = ExplicitTree.from_nested([[1, 0], 1])
        out = render_tree(t, node=1)
        assert out.startswith("NOR")
        assert out.count("leaf") == 2

    def test_line_count_matches_nodes(self):
        t = ExplicitTree.from_nested([[1, 0, 1], [0, 0]])
        assert len(render_tree(t).splitlines()) == t.num_nodes()


class TestRenderSchedule:
    def test_empty_trace(self):
        assert "empty" in render_schedule(ExecutionTrace())

    def test_one_line_per_step(self):
        from repro.trees.generators import iid_boolean

        t = iid_boolean(2, 6, 0.4, seed=0)
        res = parallel_solve(t, 1)
        out = render_schedule(res.trace, label="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 2 + res.num_steps
        assert f"work={res.total_work}" in lines[1]

    def test_bars_scale_to_width(self):
        tr = ExecutionTrace()
        tr.record(list(range(500)))  # degree 500
        tr.record([1])
        out = render_schedule(tr, width=20)
        bar_lines = out.splitlines()[1:]
        assert all(line.count("#") <= 21 for line in bar_lines)

    def test_zero_degree_steps_render_idle_marker(self):
        # Regression: tick-based degree sequences (the Section-7
        # machine's) contain zeros; those must not render a one-unit
        # bar indistinguishable from degree 1.
        tr = ExecutionTrace()
        # Zeros enter a trace the way the machine's tick-degree list
        # does (a tick may only deliver messages), not via record().
        tr.degrees = [2, 0, 1]
        lines = render_schedule(tr).splitlines()
        assert lines[1].endswith("2")
        assert "idle" in lines[2]
        assert "#" not in lines[2]
        assert lines[3].endswith("1")


class TestRenderSpanTimeline:
    def test_empty_recorder(self):
        assert "empty" in render_span_timeline(InMemoryRecorder())

    def test_one_row_per_track_with_busy_and_idle_marks(self):
        rec = InMemoryRecorder()
        rec.advance(10)
        rec.add_span("busy", 0, 4, track="level-0")
        rec.add_span("idle", 4, 10, track="level-0")
        rec.add_span("step", 2, 8, track="solve")
        out = render_span_timeline(rec, width=10)
        lines = out.splitlines()
        assert lines[0].startswith("clock=10 spans=3")
        rows = {line.split("|")[0].strip(): line for line in lines[1:]}
        assert set(rows) == {"level-0", "solve"}
        assert "#" in rows["level-0"] and "." in rows["level-0"]
        assert "." not in rows["solve"].split("|")[1]

    def test_machine_recording_has_one_row_per_level(self):
        from repro.simulator import simulate
        from repro.trees.generators import iid_boolean

        tree = iid_boolean(2, 4, 0.4, seed=7)
        rec = InMemoryRecorder()
        simulate(tree, recorder=rec)
        out = render_span_timeline(rec, label="machine")
        lines = out.splitlines()
        assert lines[0] == "machine"
        level_rows = [ln for ln in lines if ln.strip().startswith("level-")]
        assert len(level_rows) == 5  # height 4 → levels 0..4
