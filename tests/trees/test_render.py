"""Unit tests for the ASCII renderers."""

from repro.core import parallel_solve
from repro.models import ExecutionTrace
from repro.trees import ExplicitTree
from repro.trees.render import render_schedule, render_tree
from repro.types import TreeKind


class TestRenderTree:
    def test_boolean_tree_labels(self):
        t = ExplicitTree.from_nested([[1, 0], 1])
        out = render_tree(t)
        assert out.count("NOR") == 2
        assert "leaf 1" in out and "leaf 0" in out

    def test_minmax_tree_labels(self):
        t = ExplicitTree.from_nested([[1.0, 2.0], 3.0],
                                     kind=TreeKind.MINMAX)
        out = render_tree(t)
        assert "MAX" in out and "MIN" in out
        assert "leaf 3" in out

    def test_single_leaf(self):
        t = ExplicitTree([()], {0: 1})
        assert render_tree(t) == "leaf 1"

    def test_max_depth_elides(self):
        t = ExplicitTree.from_nested([[1, 0], [0, [1, 0]]])
        out = render_tree(t, max_depth=1)
        assert "..." in out

    def test_subtree_rendering(self):
        t = ExplicitTree.from_nested([[1, 0], 1])
        out = render_tree(t, node=1)
        assert out.startswith("NOR")
        assert out.count("leaf") == 2

    def test_line_count_matches_nodes(self):
        t = ExplicitTree.from_nested([[1, 0, 1], [0, 0]])
        assert len(render_tree(t).splitlines()) == t.num_nodes()


class TestRenderSchedule:
    def test_empty_trace(self):
        assert "empty" in render_schedule(ExecutionTrace())

    def test_one_line_per_step(self):
        from repro.trees.generators import iid_boolean

        t = iid_boolean(2, 6, 0.4, seed=0)
        res = parallel_solve(t, 1)
        out = render_schedule(res.trace, label="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 2 + res.num_steps
        assert f"work={res.total_work}" in lines[1]

    def test_bars_scale_to_width(self):
        tr = ExecutionTrace()
        tr.record(list(range(500)))  # degree 500
        tr.record([1])
        out = render_schedule(tr, width=20)
        bar_lines = out.splitlines()[1:]
        assert all(line.count("#") <= 21 for line in bar_lines)
