"""Unit tests for the instance generators."""

import numpy as np
import pytest

from repro.core import sequential_solve
from repro.errors import WorkloadError
from repro.trees import exact_value
from repro.trees.generators import (
    all_ones,
    all_zeros,
    forced_value_instance,
    golden_ratio_instance,
    iid_boolean,
    iid_minmax,
    iid_minmax_integers,
    near_uniform_boolean,
    sequential_worst_case,
    team_solve_hard_instance,
)
from repro.trees.generators.iid import level_invariant_bias
from repro.types import GOLDEN_BIAS, Gate, TreeKind


class TestIid:
    def test_boolean_determinism(self):
        a = iid_boolean(2, 6, 0.5, seed=1)
        b = iid_boolean(2, 6, 0.5, seed=1)
        assert np.array_equal(a.leaf_values_array, b.leaf_values_array)

    def test_boolean_bias(self):
        t = iid_boolean(2, 14, 0.25, seed=1)
        assert abs(t.leaf_values_array.mean() - 0.25) < 0.02

    def test_bad_bias_rejected(self):
        with pytest.raises(ValueError):
            iid_boolean(2, 4, 1.5, seed=0)

    def test_minmax_values_in_unit_interval(self):
        t = iid_minmax(2, 6, seed=2)
        assert t.kind is TreeKind.MINMAX
        assert np.all((t.leaf_values_array >= 0)
                      & (t.leaf_values_array < 1))

    def test_minmax_integers_distinct_values(self):
        t = iid_minmax_integers(2, 8, seed=3, num_values=4)
        assert set(np.unique(t.leaf_values_array)) <= {0.0, 1.0, 2.0, 3.0}

    def test_minmax_integers_bad_num_values(self):
        with pytest.raises(ValueError):
            iid_minmax_integers(2, 3, seed=0, num_values=0)

    def test_golden_instance_is_alternating_andor(self):
        t = golden_ratio_instance(4, seed=5)
        assert t.gate(0) is Gate.OR
        assert t.gate(1) is Gate.AND

    def test_level_invariant_bias_fixed_point(self):
        for d in (2, 3, 4, 7):
            p = level_invariant_bias(d)
            assert abs((1 - p) ** d - p) < 1e-10

    def test_golden_bias_identity(self):
        assert abs(GOLDEN_BIAS ** 2 - (1 - GOLDEN_BIAS)) < 1e-12


class TestAdversarial:
    @pytest.mark.parametrize("d,n", [(2, 6), (2, 9), (3, 5), (4, 4)])
    def test_worst_case_forces_every_leaf(self, d, n):
        t = sequential_worst_case(d, n)
        assert sequential_solve(t).total_work == d ** n

    @pytest.mark.parametrize("value", [0, 1])
    def test_worst_case_root_value(self, value):
        t = sequential_worst_case(2, 7, root_value=value)
        assert exact_value(t) == value

    def test_worst_case_bad_value(self):
        with pytest.raises(WorkloadError):
            sequential_worst_case(2, 4, root_value=2)

    def test_team_hard_instance_is_all_ones(self):
        t = team_solve_hard_instance(2, 5)
        assert np.all(t.leaf_values_array == 1)


class TestStructured:
    def test_all_ones_minimal_sequential_work(self):
        # All-ones: Sequential SOLVE evaluates exactly one proof tree.
        t = all_ones(2, 8)
        assert sequential_solve(t).total_work == 2 ** 4

    def test_all_zeros_value(self):
        t = all_zeros(2, 4)
        # NOR tree of all-zero leaves: level values alternate 1, 0, ...
        assert exact_value(t) in (0, 1)

    @pytest.mark.parametrize("d,n,value", [
        (2, 6, 0), (2, 6, 1), (3, 4, 0), (3, 5, 1),
    ])
    def test_forced_value_instance(self, d, n, value):
        t = forced_value_instance(d, n, value)
        assert exact_value(t) == value

    def test_forced_zero_meets_fact1_exactly(self):
        from repro.analysis import fact1_lower_bound

        for d, n in ((2, 8), (3, 6)):
            t = forced_value_instance(d, n, 0)
            assert sequential_solve(t).total_work == \
                fact1_lower_bound(d, n)

    def test_forced_bad_value(self):
        with pytest.raises(WorkloadError):
            forced_value_instance(2, 4, -1)


class TestNearUniform:
    def test_degree_and_depth_bands(self):
        d, n, alpha, beta = 5, 8, 0.5, 0.5
        t = near_uniform_boolean(d, n, alpha, beta, p=0.4, seed=11)
        import math

        d_min = math.ceil(alpha * d)
        min_depth = math.ceil(beta * n)
        for node in t.iter_nodes():
            if t.is_leaf(node):
                assert min_depth <= t.depth(node) <= n
            else:
                assert d_min <= t.arity(node) <= d

    def test_determinism(self):
        a = near_uniform_boolean(4, 6, 0.5, 0.5, p=0.3, seed=1)
        b = near_uniform_boolean(4, 6, 0.5, 0.5, p=0.3, seed=1)
        assert a.to_nested() == b.to_nested()

    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            near_uniform_boolean(4, 6, 0.0, 0.5, p=0.3, seed=1)
        with pytest.raises(WorkloadError):
            near_uniform_boolean(4, 6, 0.5, 1.5, p=0.3, seed=1)
        with pytest.raises(WorkloadError):
            near_uniform_boolean(4, 6, 0.5, 0.5, p=0.3, seed=1,
                                 leaf_prob=1.0)

    def test_evaluates(self):
        t = near_uniform_boolean(3, 7, 0.6, 0.5, p=0.4, seed=2)
        assert sequential_solve(t).value == exact_value(t)
