"""Canonical hashing and semantic equality of trees."""

import pytest

from repro.trees import (
    ExplicitTree,
    LazyTree,
    UniformTree,
    canonical_encoding,
    canonical_hash,
    trees_equal,
)
from repro.trees.generators import iid_boolean, iid_minmax
from repro.types import Gate, TreeKind


def _explicit_copy(tree):
    """Rebuild any tree as an ExplicitTree with fresh ids."""
    n = tree.num_nodes()
    order = list(tree.iter_nodes())
    index = {node: i for i, node in enumerate(order)}
    children = [
        [index[c] for c in tree.children(node)] for node in order
    ]
    leaves = {
        index[node]: tree.leaf_value(node)
        for node in order
        if tree.is_leaf(node)
    }
    gates = None
    if tree.kind is TreeKind.BOOLEAN:
        gates = {
            index[node]: tree.gate(node)
            for node in order
            if not tree.is_leaf(node)
        }
    assert len(children) == n
    return ExplicitTree(children, leaves, kind=tree.kind, gates=gates)


def test_hash_is_representation_invariant():
    uniform = iid_boolean(2, 4, 0.5, seed=3)
    explicit = _explicit_copy(uniform)
    assert canonical_hash(uniform) == canonical_hash(explicit)
    assert trees_equal(uniform, explicit)


def test_hash_is_stable_across_calls():
    tree = iid_minmax(2, 3, seed=9)
    assert canonical_hash(tree) == canonical_hash(tree)
    # Pinned digest: the encoding is part of the serve cache-key
    # contract; changing it invalidates every persisted key.
    assert len(canonical_hash(tree)) == 64


def test_leaf_value_changes_hash():
    a = ExplicitTree.from_nested([[0, 1], [1, 1]])
    b = ExplicitTree.from_nested([[0, 1], [1, 0]])
    assert canonical_hash(a) != canonical_hash(b)
    assert not trees_equal(a, b)


def test_structure_changes_hash():
    a = ExplicitTree.from_nested([[0, 1], 1])
    b = ExplicitTree.from_nested([0, [1, 1]])
    assert canonical_hash(a) != canonical_hash(b)
    assert not trees_equal(a, b)


def test_gate_changes_hash():
    a = ExplicitTree.from_nested([[0, 1], [1, 1]], gates=Gate.NOR)
    b = ExplicitTree.from_nested([[0, 1], [1, 1]], gates=Gate.AND)
    assert canonical_hash(a) != canonical_hash(b)
    assert not trees_equal(a, b)


def test_kind_changes_hash():
    a = ExplicitTree.from_nested([[0, 1], [1, 1]])
    b = ExplicitTree.from_nested(
        [[0.0, 1.0], [1.0, 1.0]], kind=TreeKind.MINMAX
    )
    assert canonical_hash(a) != canonical_hash(b)
    assert not trees_equal(a, b)


def test_minmax_float_values_encoded_exactly():
    a = ExplicitTree.from_nested([0.1, 0.2], kind=TreeKind.MINMAX)
    b = ExplicitTree.from_nested(
        [0.1, 0.2 + 1e-12], kind=TreeKind.MINMAX
    )
    assert canonical_hash(a) != canonical_hash(b)


def test_lazy_tree_hashes_like_its_materialisation():
    def expand(payload, depth):
        if depth == 2:
            return ("leaf", payload % 2)
        return ("internal", [payload * 2, payload * 2 + 1])

    lazy = LazyTree(1, expand, kind=TreeKind.BOOLEAN)
    explicit = ExplicitTree.from_nested([[0, 1], [0, 1]])
    assert canonical_hash(lazy) == canonical_hash(explicit)
    assert trees_equal(lazy, explicit)


def test_single_leaf_trees():
    a = UniformTree(2, 0, [1])
    b = ExplicitTree([()], {0: 1})
    assert canonical_hash(a) == canonical_hash(b)
    assert trees_equal(a, b)


def test_encoding_is_bytes_and_prefix_tagged():
    tree = ExplicitTree.from_nested([0, 1])
    enc = canonical_encoding(tree)
    assert isinstance(enc, bytes)
    assert enc.startswith(b"boolean")


@pytest.mark.parametrize("seed", range(5))
def test_distinct_random_instances_hash_distinct(seed):
    a = iid_boolean(2, 4, 0.5, seed=seed)
    b = iid_boolean(2, 4, 0.5, seed=seed + 100)
    if trees_equal(a, b):  # pragma: no cover - astronomically unlikely
        assert canonical_hash(a) == canonical_hash(b)
    else:
        assert canonical_hash(a) != canonical_hash(b)
