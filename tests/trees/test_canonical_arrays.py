"""CanonicalArrays: preorder lowering invariants and round-trips."""

import numpy as np
import pytest

from repro.trees import CanonicalArrays, canonical_arrays, trees_equal
from repro.trees.explicit import ExplicitTree
from repro.trees.generators import iid_boolean, iid_minmax
from repro.trees.io import tree_to_dict
from repro.types import Gate, TreeKind


def _check_invariants(arrays: CanonicalArrays) -> None:
    n = arrays.n_nodes
    assert arrays.parents[0] == -1
    assert arrays.depths[0] == 0
    assert int(arrays.spans[0]) == n
    # Subtrees are contiguous preorder ranges: every node lies inside
    # its parent's range, strictly after the parent.
    for i in range(1, n):
        p = int(arrays.parents[i])
        assert p < i <= p + int(arrays.spans[p]) - 1
        assert arrays.depths[i] == arrays.depths[p] + 1
    # Arities match the span-walk children; child_pos is the rank.
    for i in range(n):
        kids = arrays.children_of(i)
        assert len(kids) == int(arrays.arities[i])
        for pos, k in enumerate(kids):
            assert int(arrays.child_pos[k]) == pos
    # Levels partition the nodes; same-parent runs are contiguous
    # within each sorted level (the vectorised sweeps rely on this).
    assert sum(len(lv) for lv in arrays.levels) == n
    for lv in arrays.levels[1:]:
        parents = arrays.parents[lv]
        seen = set()
        previous = None
        for p in parents.tolist():
            if p != previous:
                assert p not in seen
                seen.add(p)
                previous = p


@pytest.mark.parametrize("branching,height", [(2, 3), (3, 4), (2, 6)])
def test_boolean_roundtrip(branching, height):
    tree = iid_boolean(branching, height, 0.5, seed=7)
    arrays = canonical_arrays(tree)
    _check_invariants(arrays)
    assert arrays.kind is TreeKind.BOOLEAN
    rebuilt = arrays.to_explicit()
    assert trees_equal(tree, rebuilt)
    # The serialised forms agree wherever ids allow: a dense rebuild of
    # an explicit original is the identical dict.
    explicit = arrays.to_explicit()
    again = canonical_arrays(explicit)
    assert tree_to_dict(again.to_explicit()) == tree_to_dict(explicit)


@pytest.mark.parametrize("branching,height", [(2, 3), (3, 5)])
def test_minmax_roundtrip(branching, height):
    tree = iid_minmax(branching, height, seed=11)
    arrays = canonical_arrays(tree)
    _check_invariants(arrays)
    assert arrays.kind is TreeKind.MINMAX
    assert arrays.gate_absorbing is None
    assert trees_equal(tree, arrays.to_explicit())


def test_explicit_dict_roundtrip_is_exact():
    tree = ExplicitTree.from_nested(
        [[1, 0, [1, 1]], [0, [0, 1], 1], 1],
        gates=Gate.NAND,
    )
    arrays = canonical_arrays(tree)
    _check_invariants(arrays)
    # ExplicitTree.from_nested numbers nodes in preorder already, so
    # the rebuild reproduces tree_to_dict exactly, ids included.
    assert tree_to_dict(arrays.to_explicit()) == tree_to_dict(tree)


def test_mixed_gates_survive_lowering():
    tree = ExplicitTree(
        children=[[1, 2], [3, 4], [], [], []],
        leaf_values={2: 1, 3: 0, 4: 1},
        kind=TreeKind.BOOLEAN,
        gates={0: Gate.NOR, 1: Gate.AND},
    )
    arrays = canonical_arrays(tree)
    rebuilt = arrays.to_explicit()
    assert rebuilt.gate(0) is Gate.NOR
    assert rebuilt.gate(1) is Gate.AND
    assert trees_equal(tree, rebuilt)


def test_single_leaf_tree():
    tree = ExplicitTree([[]], {0: 1}, kind=TreeKind.BOOLEAN, gates=None)
    arrays = canonical_arrays(tree)
    assert arrays.n_nodes == 1
    assert arrays.height == 0
    assert bool(arrays.is_leaf[0])
    assert arrays.children_of(0) == []
    assert trees_equal(tree, arrays.to_explicit())


def test_lowering_is_memoized_per_tree_object():
    tree = iid_boolean(2, 4, 0.5, seed=3)
    assert canonical_arrays(tree) is canonical_arrays(tree)


def test_index_map_inverts_node_ids():
    tree = iid_minmax(3, 3, seed=5)
    arrays = canonical_arrays(tree)
    index = arrays.index_map()
    assert len(index) == arrays.n_nodes
    for i, node in enumerate(arrays.node_ids.tolist()):
        assert index[node] == i
    assert arrays.index_map() is index  # cached


def test_leaf_values_nan_at_internal_nodes():
    tree = iid_minmax(2, 3, seed=1)
    arrays = canonical_arrays(tree)
    assert np.isnan(arrays.values[~arrays.is_leaf]).all()
    assert not np.isnan(arrays.values[arrays.is_leaf]).any()
