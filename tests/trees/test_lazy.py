"""Unit tests for LazyTree and lazy_view."""

import pytest

from repro.errors import TreeStructureError
from repro.trees import ExplicitTree, LazyTree, UniformTree, exact_value, lazy_view
from repro.types import Gate, TreeKind

import numpy as np


def binary_counter_tree(depth: int) -> LazyTree:
    """Payloads are path indices; leaves get parity values."""

    def expand(payload, d):
        if d >= depth:
            return ("leaf", payload % 2)
        return ("internal", [payload * 2, payload * 2 + 1])

    return LazyTree(1, expand)


class TestExpansion:
    def test_root_initially_unexpanded(self):
        t = binary_counter_tree(2)
        assert not t.is_expanded(0)
        assert t.generated_nodes() == 1

    def test_expand_counts_once(self):
        t = binary_counter_tree(2)
        t.expand(0)
        t.expand(0)  # memoised
        assert t.expansions == 1
        assert t.generated_nodes() == 3

    def test_children_autoexpand(self):
        t = binary_counter_tree(2)
        kids = t.children(0)
        assert len(kids) == 2
        assert t.is_expanded(0)

    def test_payloads_propagate(self):
        t = binary_counter_tree(2)
        a, b = t.children(0)
        assert t.payload(a) == 2
        assert t.payload(b) == 3

    def test_leaf_value_and_depth(self):
        t = binary_counter_tree(1)
        a, b = t.children(0)
        assert t.is_leaf(a)
        assert t.leaf_value(a) == 0
        assert t.leaf_value(b) == 1
        assert t.depth(b) == 1

    def test_parent_tracking(self):
        t = binary_counter_tree(2)
        a, _ = t.children(0)
        aa, _ = t.children(a)
        assert t.parent(aa) == a
        assert t.parent(0) is None

    def test_leaf_value_on_internal_raises(self):
        t = binary_counter_tree(2)
        with pytest.raises(TreeStructureError):
            t.leaf_value(0)

    def test_bad_boolean_leaf_value(self):
        t = LazyTree(0, lambda p, d: ("leaf", 7))
        with pytest.raises(TreeStructureError):
            t.expand(0)

    def test_bool_leaf_coerced(self):
        t = LazyTree(0, lambda p, d: ("leaf", True))
        assert t.leaf_value(0) == 1

    def test_empty_internal_rejected(self):
        t = LazyTree(0, lambda p, d: ("internal", []))
        with pytest.raises(TreeStructureError):
            t.expand(0)

    def test_unknown_tag_rejected(self):
        t = LazyTree(0, lambda p, d: ("bogus", None))
        with pytest.raises(TreeStructureError):
            t.expand(0)

    def test_full_evaluation(self):
        t = binary_counter_tree(3)
        assert exact_value(t) in (0, 1)
        # Full evaluation expands everything: 2^4 - 1 nodes.
        assert t.expansions == 15


class TestLazyView:
    def test_view_matches_base_value(self):
        base = UniformTree(2, 5, np.arange(32) % 2)
        view = lazy_view(base)
        assert exact_value(view) == exact_value(base)

    def test_view_preserves_gates(self):
        base = ExplicitTree.from_nested(
            [[0, 1], 1], gates={0: Gate.NAND, 1: Gate.OR}
        )
        view = lazy_view(base)
        view.children(0)  # expand root
        kids = view.children(0)
        assert view.gate(0) is Gate.NAND
        assert view.gate(kids[0]) is Gate.OR

    def test_view_tracks_expansions(self):
        base = UniformTree(2, 3, np.zeros(8, dtype=int))
        view = lazy_view(base)
        view.children(0)
        assert view.expansions == 1

    def test_view_of_minmax(self):
        base = UniformTree(2, 3, np.arange(8.0), kind=TreeKind.MINMAX)
        view = lazy_view(base)
        assert exact_value(view) == exact_value(base)
