"""Unit tests for the PermutedTree view."""

import numpy as np
import pytest

from repro.trees import PermutedTree, UniformTree, exact_value
from repro.trees.generators import iid_boolean, iid_minmax


@pytest.fixture
def base():
    return iid_boolean(3, 3, 0.4, seed=9)


class TestPermutation:
    def test_children_are_a_permutation(self, base):
        view = PermutedTree(base, seed=1)
        for node in range(base.first_leaf_id()):
            assert sorted(view.children(node)) == \
                sorted(base.children(node))

    def test_deterministic_across_visits(self, base):
        view = PermutedTree(base, seed=1)
        first = view.children(0)
        assert view.children(0) == first

    def test_deterministic_across_instances(self, base):
        a = PermutedTree(base, seed=1)
        b = PermutedTree(base, seed=1)
        assert a.children(0) == b.children(0)
        assert a.children(2) == b.children(2)

    def test_different_seeds_differ_somewhere(self, base):
        a = PermutedTree(base, seed=1)
        b = PermutedTree(base, seed=2)
        internal = range(base.first_leaf_id())
        assert any(a.children(i) != b.children(i) for i in internal)

    def test_value_invariant_under_permutation(self):
        for seed in range(5):
            base = iid_boolean(2, 6, 0.5, seed=seed)
            view = PermutedTree(base, seed=seed + 100)
            assert exact_value(view) == exact_value(base)

    def test_minmax_value_invariant(self):
        base = iid_minmax(2, 5, seed=3)
        view = PermutedTree(base, seed=4)
        assert exact_value(view) == exact_value(base)


class TestDelegation:
    def test_structure_delegates(self, base):
        view = PermutedTree(base, seed=1)
        assert view.root == base.root
        assert view.depth(5) == base.depth(5)
        assert view.parent(5) == base.parent(5)
        assert view.kind == base.kind
        assert view.is_leaf(base.first_leaf_id())
        assert view.seed == 1
        assert view.base is base

    def test_gate_delegates(self, base):
        view = PermutedTree(base, seed=1)
        assert view.gate(0) is base.gate(0)

    def test_left_siblings_follow_permuted_order(self, base):
        view = PermutedTree(base, seed=5)
        kids = view.children(0)
        assert view.left_siblings(kids[1]) == (kids[0],)

    def test_single_child_not_permuted(self):
        base = UniformTree(1, 3, np.array([1]))
        view = PermutedTree(base, seed=1)
        assert view.children(0) == base.children(0)
