"""Tests for GameTree.validate via deliberately broken trees."""

import pytest

from repro.errors import TreeStructureError
from repro.trees import ExplicitTree
from repro.trees.base import GameTree
from repro.types import Gate, TreeKind


class _BrokenTree(GameTree):
    """A two-node tree with injectable inconsistencies."""

    kind = TreeKind.BOOLEAN

    def __init__(self, *, bad_parent=False, bad_depth=False,
                 root_parent=False, root_depth=False):
        self.bad_parent = bad_parent
        self.bad_depth = bad_depth
        self.root_parent = root_parent
        self.root_depth = root_depth

    @property
    def root(self):
        return 0

    def children(self, node):
        return (1,) if node == 0 else ()

    def is_leaf(self, node):
        return node == 1

    def leaf_value(self, node):
        return 1

    def depth(self, node):
        if node == 0:
            return 1 if self.root_depth else 0
        return 2 if self.bad_depth else 1

    def parent(self, node):
        if node == 0:
            return 7 if self.root_parent else None
        return 9 if self.bad_parent else 0

    def gate(self, node):
        return Gate.NOR


class TestValidate:
    def test_consistent_tree_passes(self):
        _BrokenTree().validate()

    def test_parent_mismatch_detected(self):
        with pytest.raises(TreeStructureError):
            _BrokenTree(bad_parent=True).validate()

    def test_depth_mismatch_detected(self):
        with pytest.raises(TreeStructureError):
            _BrokenTree(bad_depth=True).validate()

    def test_root_with_parent_detected(self):
        with pytest.raises(TreeStructureError):
            _BrokenTree(root_parent=True).validate()

    def test_root_depth_detected(self):
        with pytest.raises(TreeStructureError):
            _BrokenTree(root_depth=True).validate()

    def test_leaf_with_children_detected(self):
        class LeafKids(_BrokenTree):
            def children(self, node):
                return (1,) if node in (0, 1) else ()

        with pytest.raises(TreeStructureError):
            LeafKids().validate()

    def test_internal_without_children_detected(self):
        class Childless(GameTree):
            kind = TreeKind.BOOLEAN

            @property
            def root(self):
                return 0

            def children(self, node):
                return ()

            def is_leaf(self, node):
                return False  # claims internal, yet no children

            def leaf_value(self, node):  # pragma: no cover
                return 0

            def depth(self, node):
                return 0

            def parent(self, node):
                return None

        with pytest.raises(TreeStructureError):
            Childless().validate()

    def test_default_gate_raises_on_minmax_style_tree(self):
        t = ExplicitTree.from_nested([1.0, 0.0], kind=TreeKind.MINMAX)
        with pytest.raises(TreeStructureError):
            t.gate(0)
