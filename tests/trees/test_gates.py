"""Unit tests for gate schemes."""

import pytest

from repro.trees.gates import GateScheme, all_nor, alternating, coerce_scheme
from repro.types import Gate


class TestGateScheme:
    def test_cycles_by_depth(self):
        s = GateScheme([Gate.OR, Gate.AND, Gate.NOR])
        assert s.gate_at(0) is Gate.OR
        assert s.gate_at(1) is Gate.AND
        assert s.gate_at(2) is Gate.NOR
        assert s.gate_at(3) is Gate.OR

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            GateScheme([])

    def test_all_nor(self):
        s = all_nor()
        assert all(s.gate_at(d) is Gate.NOR for d in range(5))

    def test_alternating_default_or(self):
        s = alternating()
        assert s.gate_at(0) is Gate.OR
        assert s.gate_at(1) is Gate.AND

    def test_alternating_and_top(self):
        s = alternating(Gate.AND)
        assert s.gate_at(0) is Gate.AND
        assert s.gate_at(1) is Gate.OR

    def test_alternating_rejects_nor(self):
        with pytest.raises(ValueError):
            alternating(Gate.NOR)

    def test_coerce_scheme_variants(self):
        assert coerce_scheme(Gate.NAND).gate_at(3) is Gate.NAND
        assert coerce_scheme([Gate.OR, Gate.AND]).gate_at(1) is Gate.AND
        s = all_nor()
        assert coerce_scheme(s) is s
