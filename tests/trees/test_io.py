"""Unit tests for tree serialization."""

import numpy as np
import pytest

from repro.errors import TreeStructureError
from repro.trees import ExplicitTree, exact_value, lazy_view
from repro.trees.generators import iid_boolean, iid_minmax
from repro.trees.io import (
    explicit_from_dict,
    explicit_to_dict,
    load_explicit,
    load_uniform,
    save_explicit,
    save_tree,
    save_uniform,
)
from repro.types import Gate, TreeKind


class TestUniformRoundTrip:
    def test_boolean_round_trip(self, tmp_path):
        t = iid_boolean(3, 4, 0.4, seed=1, gates=[Gate.OR, Gate.AND])
        path = str(tmp_path / "t.npz")
        save_uniform(t, path)
        loaded = load_uniform(path)
        assert loaded.branching == 3
        assert loaded.height() == 4
        assert np.array_equal(loaded.leaf_values_array,
                              t.leaf_values_array)
        assert loaded.gate(0) is Gate.OR
        assert loaded.gate(1) is Gate.AND
        assert exact_value(loaded) == exact_value(t)

    def test_minmax_round_trip(self, tmp_path):
        t = iid_minmax(2, 5, seed=2)
        path = str(tmp_path / "m.npz")
        save_uniform(t, path)
        loaded = load_uniform(path)
        assert loaded.kind is TreeKind.MINMAX
        assert exact_value(loaded) == exact_value(t)


class TestExplicitRoundTrip:
    def test_dict_round_trip(self):
        t = ExplicitTree.from_nested(
            [[1, 0], [0, [1, 1]]], gates=[Gate.NOR, Gate.OR]
        )
        data = explicit_to_dict(t)
        loaded = explicit_from_dict(data)
        assert loaded.to_nested() == t.to_nested()
        for node in t.iter_nodes():
            if not t.is_leaf(node):
                assert loaded.gate(node) is t.gate(node)

    def test_json_file_round_trip(self, tmp_path):
        t = ExplicitTree.from_nested([1.5, [2.5, 0.5]],
                                     kind=TreeKind.MINMAX)
        path = str(tmp_path / "t.json")
        save_explicit(t, path)
        loaded = load_explicit(path)
        assert exact_value(loaded) == exact_value(t)
        assert loaded.kind is TreeKind.MINMAX

    def test_boolean_dict_requires_gates(self):
        t = ExplicitTree.from_nested([1, 0])
        data = explicit_to_dict(t)
        data["gates"] = None
        with pytest.raises(TreeStructureError):
            explicit_from_dict(data)


class TestDispatch:
    def test_save_tree_dispatches(self, tmp_path):
        u = iid_boolean(2, 3, 0.5, seed=0)
        save_tree(u, str(tmp_path / "u.npz"))
        e = ExplicitTree.from_nested([1, 0])
        save_tree(e, str(tmp_path / "e.json"))
        assert load_uniform(str(tmp_path / "u.npz")).num_leaves() == 8
        assert load_explicit(str(tmp_path / "e.json")).num_leaves() == 2

    def test_lazy_tree_rejected(self, tmp_path):
        t = lazy_view(iid_boolean(2, 2, 0.5, seed=0))
        with pytest.raises(TreeStructureError):
            save_tree(t, str(tmp_path / "x"))
