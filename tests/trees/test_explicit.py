"""Unit tests for ExplicitTree construction and validation."""

import pytest

from repro.errors import TreeStructureError
from repro.trees import ExplicitTree
from repro.types import Gate, TreeKind


class TestFromNested:
    def test_round_trip(self):
        spec = [[0, 1], [1, [0, 0, 1]]]
        t = ExplicitTree.from_nested(spec)
        assert t.to_nested() == spec

    def test_bools_become_ints(self):
        t = ExplicitTree.from_nested([True, False])
        assert t.leaf_value(1) == 1
        assert t.leaf_value(2) == 0

    def test_empty_internal_node_rejected(self):
        with pytest.raises(TreeStructureError):
            ExplicitTree.from_nested([[], 1])

    def test_float_leaves_for_minmax(self):
        t = ExplicitTree.from_nested([1.5, [2.5, 0.5]],
                                     kind=TreeKind.MINMAX)
        assert t.leaf_value(1) == 1.5


class TestDirectConstruction:
    def test_child_out_of_range(self):
        with pytest.raises(TreeStructureError):
            ExplicitTree([(1, 5), (), ()], {1: 0, 2: 0})

    def test_node_with_two_parents(self):
        with pytest.raises(TreeStructureError):
            ExplicitTree([(1, 1)], {1: 0})

    def test_unreachable_node(self):
        with pytest.raises(TreeStructureError):
            ExplicitTree([(1,), (), ()], {1: 0, 2: 0})

    def test_leaf_without_value(self):
        with pytest.raises(TreeStructureError):
            ExplicitTree([(1, 2), (), ()], {1: 0})

    def test_len(self):
        t = ExplicitTree.from_nested([0, 1])
        assert len(t) == 3


class TestGates:
    def test_uniform_gate(self):
        t = ExplicitTree.from_nested([[0, 1], 1], gates=Gate.AND)
        assert t.gate(0) is Gate.AND
        assert t.gate(1) is Gate.AND

    def test_depth_cycled_gates(self):
        t = ExplicitTree.from_nested([[0, 1], 1],
                                     gates=[Gate.OR, Gate.AND])
        assert t.gate(0) is Gate.OR
        assert t.gate(1) is Gate.AND

    def test_per_node_gates(self):
        t = ExplicitTree.from_nested([[0, 1], 1],
                                     gates={0: Gate.NOR, 1: Gate.OR})
        assert t.gate(0) is Gate.NOR
        assert t.gate(1) is Gate.OR

    def test_validate_passes_on_nested(self):
        ExplicitTree.from_nested([[0, 1], [1, 0, [1, 1]]]).validate()
