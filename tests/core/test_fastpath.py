"""Unit tests for the vectorised uniform-tree fast path."""

import numpy as np
import pytest

from repro.core import sequential_solve
from repro.core.fastpath import (
    uniform_evaluated_leaf_mask,
    uniform_expansion_cost,
    uniform_sequential_cost,
    uniform_value,
)
from repro.core.nodeexpansion import n_sequential_solve
from repro.errors import TreeStructureError
from repro.trees import UniformTree, exact_value
from repro.trees.generators import (
    all_ones,
    iid_boolean,
    iid_minmax,
    sequential_worst_case,
)
from repro.types import Gate


class TestAgainstGenericEngines:
    @pytest.mark.parametrize("seed", range(12))
    def test_value_and_cost(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(1, 4))
        n = int(rng.integers(0, 7))
        t = iid_boolean(d, n, float(rng.random()), seed=seed)
        ref = sequential_solve(t)
        value, cost = uniform_sequential_cost(t)
        assert value == ref.value
        assert cost == ref.total_work
        assert uniform_value(t) == exact_value(t)

    @pytest.mark.parametrize("seed", range(8))
    def test_expansion_cost(self, seed):
        t = iid_boolean(2, 6, 0.4, seed=seed)
        ref = n_sequential_solve(t)
        value, cost = uniform_expansion_cost(t)
        assert value == ref.value
        assert cost == ref.total_work

    @pytest.mark.parametrize("seed", range(8))
    def test_leaf_mask_is_L(self, seed):
        t = iid_boolean(2, 6, 0.45, seed=seed)
        mask = uniform_evaluated_leaf_mask(t)
        first = t.first_leaf_id()
        expected = {t.leaf_index(leaf)
                    for leaf in sequential_solve(t).evaluated}
        assert set(np.flatnonzero(mask)) == expected

    def test_alternating_gates(self):
        t = iid_boolean(2, 7, 0.6, seed=3, gates=[Gate.OR, Gate.AND])
        value, cost = uniform_sequential_cost(t)
        ref = sequential_solve(t)
        assert (value, cost) == (ref.value, ref.total_work)


class TestStructuredInstances:
    def test_worst_case_counts_every_leaf(self):
        t = sequential_worst_case(2, 12)
        _, cost = uniform_sequential_cost(t)
        assert cost == 2 ** 12

    def test_all_ones_counts_proof_tree(self):
        t = all_ones(2, 12)
        _, cost = uniform_sequential_cost(t)
        assert cost == 2 ** 6

    def test_height_zero(self):
        t = UniformTree(2, 0, np.array([1]))
        assert uniform_value(t) == 1
        assert uniform_sequential_cost(t) == (1, 1)
        assert uniform_expansion_cost(t) == (1, 1)
        assert uniform_evaluated_leaf_mask(t).tolist() == [True]

    def test_large_instance_fast(self):
        # A million-leaf instance evaluates in well under a second.
        t = iid_boolean(2, 20, 0.382, seed=0)
        value, cost = uniform_sequential_cost(t)
        assert value in (0, 1)
        assert cost >= 2 ** 10  # Fact 1

    def test_minmax_rejected(self):
        t = iid_minmax(2, 3, seed=0)
        with pytest.raises(TreeStructureError):
            uniform_value(t)

    def test_non_uniform_rejected(self):
        from repro.trees import ExplicitTree

        t = ExplicitTree.from_nested([1, 0])
        with pytest.raises(TreeStructureError):
            uniform_value(t)
