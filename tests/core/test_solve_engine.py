"""Unit tests for the step-synchronous Boolean engine."""

import pytest

from repro.core import (
    SequentialPolicy,
    WidthPolicy,
    run_boolean,
    sequential_solve,
)
from repro.errors import ModelViolationError
from repro.trees import ExplicitTree, UniformTree
from repro.trees.generators import iid_boolean

import numpy as np


class TestEngineBasics:
    def test_single_leaf_tree(self):
        t = ExplicitTree([()], {0: 1})
        res = run_boolean(t, SequentialPolicy())
        assert res.value == 1
        assert res.num_steps == 1
        assert res.evaluated == [0]

    def test_width0_equals_recursive_sequential(self):
        for seed in range(10):
            t = iid_boolean(2, 6, 0.5, seed=seed)
            eng = run_boolean(t, WidthPolicy(0))
            rec = sequential_solve(t)
            assert eng.value == rec.value
            assert eng.evaluated == rec.evaluated
            assert eng.num_steps == rec.num_steps

    def test_sequential_policy_equals_width0(self):
        t = iid_boolean(3, 4, 0.4, seed=1)
        a = run_boolean(t, SequentialPolicy())
        b = run_boolean(t, WidthPolicy(0))
        assert a.evaluated == b.evaluated

    def test_empty_policy_raises(self):
        t = iid_boolean(2, 3, 0.5, seed=0)
        with pytest.raises(ModelViolationError):
            run_boolean(t, lambda tree, state: [])

    def test_max_steps_guard(self):
        t = iid_boolean(2, 8, 0.5, seed=0)
        with pytest.raises(ModelViolationError):
            run_boolean(t, SequentialPolicy(), max_steps=2)

    def test_on_step_hook_sees_every_step(self):
        t = iid_boolean(2, 5, 0.5, seed=2)
        steps = []
        res = run_boolean(
            t, WidthPolicy(1),
            on_step=lambda state, i, batch: steps.append((i, len(batch))),
        )
        assert len(steps) == res.num_steps
        assert [i for i, _ in steps] == list(range(res.num_steps))
        assert [d for _, d in steps] == res.trace.degrees

    def test_keep_batches(self):
        t = iid_boolean(2, 5, 0.5, seed=3)
        res = run_boolean(t, WidthPolicy(1), keep_batches=True)
        assert res.trace.batches is not None
        assert sum(len(b) for b in res.trace.batches) == res.total_work

    def test_no_leaf_evaluated_twice(self):
        t = iid_boolean(2, 7, 0.5, seed=4)
        res = run_boolean(t, WidthPolicy(2))
        assert len(set(res.evaluated)) == len(res.evaluated)

    def test_unary_chain(self):
        t = UniformTree(1, 6, np.array([1]))
        res = run_boolean(t, WidthPolicy(1))
        assert res.num_steps == 1
        assert res.value == 1  # six NOT gates over 1


class TestHeightZeroMainLoop:
    """Height-0 trees run through the main loop — no degenerate path.

    Regression: ``run_boolean`` used to special-case single-leaf trees
    and return before consulting the policy, skipping validation,
    tracing and the ``on_step`` hook.
    """

    def _leaf_tree(self):
        return ExplicitTree([()], {0: 1})

    def test_policy_is_consulted(self):
        calls = []

        def policy(tree, state):
            calls.append(True)
            return [tree.root]

        res = run_boolean(self._leaf_tree(), policy)
        assert calls == [True]
        assert res.value == 1

    def test_validate_batches_enforced(self):
        t = self._leaf_tree()
        # A policy violating the contract (duplicate selection) must
        # be caught even when the whole tree is a single leaf.
        bad = lambda tree, state: [tree.root, tree.root]
        with pytest.raises(ModelViolationError):
            run_boolean(t, bad, validate_batches=True)

    def test_on_step_and_trace_fire_once(self):
        seen = []
        res = run_boolean(
            self._leaf_tree(), SequentialPolicy(),
            keep_batches=True,
            on_step=lambda state, i, batch: seen.append((i, tuple(batch))),
        )
        assert seen == [(0, (0,))]
        assert res.trace.degrees == [1]
        assert res.trace.batches == [(0,)]
