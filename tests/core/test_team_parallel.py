"""Unit tests for Team SOLVE and Parallel SOLVE."""

import math

import pytest

from repro.core import parallel_solve, sequential_solve, team_solve
from repro.trees import exact_value
from repro.trees.generators import (
    all_ones,
    iid_boolean,
    sequential_worst_case,
    team_solve_hard_instance,
)


class TestTeamSolve:
    @pytest.mark.parametrize("p", [1, 2, 5, 16])
    def test_value_correct(self, p):
        t = iid_boolean(2, 7, 0.5, seed=p)
        assert team_solve(t, p).value == exact_value(t)

    def test_p1_equals_sequential(self):
        t = iid_boolean(2, 7, 0.5, seed=0)
        assert team_solve(t, 1).evaluated == \
            sequential_solve(t).evaluated

    def test_more_processors_never_slower(self):
        t = iid_boolean(2, 9, 0.4, seed=1)
        steps = [team_solve(t, p).num_steps for p in (1, 2, 4, 8, 16)]
        assert steps == sorted(steps, reverse=True) or all(
            a >= b for a, b in zip(steps, steps[1:])
        )

    def test_processors_bounded_by_p(self):
        t = iid_boolean(2, 8, 0.5, seed=2)
        assert team_solve(t, 6).processors <= 6

    def test_proposition1_sqrt_lower_bound(self):
        # Omega(sqrt(p)) on uniform instances: with p = d^k the team
        # takes at most S / d^(k/2)-ish steps.  Use the all-ones hard
        # instance where the bound is tight.
        d, n, k = 2, 12, 6
        p = d ** k
        t = team_solve_hard_instance(d, n)
        s = sequential_solve(t).num_steps
        steps = team_solve(t, p).num_steps
        speedup = s / steps
        assert speedup >= math.sqrt(p) / 4
        assert speedup <= 4 * math.sqrt(p)


class TestParallelSolve:
    @pytest.mark.parametrize("w", [0, 1, 2, 3])
    def test_value_correct(self, w):
        t = iid_boolean(3, 5, 0.4, seed=w)
        assert parallel_solve(t, w).value == exact_value(t)

    def test_width0_is_sequential(self):
        t = iid_boolean(2, 8, 0.5, seed=3)
        assert parallel_solve(t, 0).evaluated == \
            sequential_solve(t).evaluated

    def test_wider_never_slower(self):
        t = iid_boolean(2, 10, 0.4, seed=4)
        steps = [parallel_solve(t, w).num_steps for w in range(4)]
        assert all(a >= b for a, b in zip(steps, steps[1:]))

    def test_width1_processors_at_most_n_plus_1(self):
        for seed in range(5):
            n = 9
            t = iid_boolean(2, n, 0.5, seed=seed)
            assert parallel_solve(t, 1).processors <= n + 1

    def test_theorem1_speedup_on_worst_case(self):
        # Every-instance guarantee: even the worst-case family gets a
        # strong speed-up.
        t = sequential_worst_case(2, 12)
        s = sequential_solve(t).num_steps
        p = parallel_solve(t, 1).num_steps
        assert s / p > 3.0

    def test_work_bounded_corollary1(self):
        # W(T) <= c' S(T) with a small constant.
        for seed in range(5):
            t = iid_boolean(2, 10, 0.4, seed=seed)
            s = sequential_solve(t).total_work
            w = parallel_solve(t, 1).total_work
            assert w <= 3 * s

    def test_all_ones_proof_tree_only(self):
        t = all_ones(2, 8)
        res = parallel_solve(t, 1)
        assert res.value == exact_value(t)
        # Sequential needs d^(n/2) = 16; parallel strictly fewer steps.
        assert res.num_steps < 16
