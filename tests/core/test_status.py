"""Unit tests for BooleanState: determination, liveness, pruning numbers."""

import pytest

from repro.core import BooleanState
from repro.errors import ModelViolationError
from repro.trees import ExplicitTree
from repro.types import Gate


@pytest.fixture
def tree():
    # NOR tree: [[1, 0], [0, 0]]
    return ExplicitTree.from_nested([[1, 0], [0, 0]])


class TestDetermination:
    def test_initially_undetermined(self, tree):
        state = BooleanState(tree)
        assert not state.is_determined(tree.root)
        assert state.root_value() is None

    def test_absorbing_child_determines_parent(self, tree):
        state = BooleanState(tree)
        # Leaf 2 (value 1) is absorbing for its NOR parent (node 1).
        state.evaluate_leaf(2)
        assert state.value[2] == 1
        assert state.value[1] == 0  # NOR absorbed

    def test_all_children_determine_otherwise(self, tree):
        state = BooleanState(tree)
        # Node 4's children (leaves 5, 6) are both 0 -> NOR gives 1,
        # which absorbs at the root: root = 0.
        state.evaluate_leaf(5)
        assert not state.is_determined(4)
        state.evaluate_leaf(6)
        assert state.value[4] == 1
        assert state.value[0] == 0

    def test_cascade_to_root(self, tree):
        state = BooleanState(tree)
        state.evaluate_leaf(5)
        state.evaluate_leaf(6)
        assert state.root_value() == 0

    def test_double_evaluation_rejected(self, tree):
        state = BooleanState(tree)
        state.evaluate_leaf(2)
        with pytest.raises(ModelViolationError):
            state.evaluate_leaf(2)

    def test_internal_evaluation_rejected(self, tree):
        state = BooleanState(tree)
        with pytest.raises(ModelViolationError):
            state.evaluate_leaf(1)

    def test_or_gate_absorption(self):
        t = ExplicitTree.from_nested([[1, 0], 0], gates=Gate.OR)
        state = BooleanState(t)
        state.evaluate_leaf(2)  # value 1 absorbs OR
        assert state.value[1] == 1
        assert state.value[0] == 1  # root OR absorbed too

    def test_and_gate_absorption(self):
        t = ExplicitTree.from_nested([[1, 0], 1], gates=Gate.AND)
        state = BooleanState(t)
        state.evaluate_leaf(3)  # value 0 absorbs AND
        assert state.value[1] == 0
        assert state.value[0] == 0


class TestLiveness:
    def test_live_initially(self, tree):
        state = BooleanState(tree)
        assert all(state.is_live(leaf) for leaf in (2, 3, 5, 6))

    def test_dead_after_sibling_determines_parent(self, tree):
        state = BooleanState(tree)
        state.evaluate_leaf(2)  # node 1 determined
        assert not state.is_live(3)  # sibling of 2 under node 1
        assert state.is_live(5)

    def test_dead_after_root_determined(self, tree):
        state = BooleanState(tree)
        state.evaluate_leaf(5)
        state.evaluate_leaf(6)
        assert all(not state.is_live(leaf) for leaf in (2, 3))


class TestPruningNumber:
    def test_leftmost_leaf_is_zero(self, tree):
        state = BooleanState(tree)
        assert state.pruning_number(2) == 0

    def test_counts_live_left_siblings(self, tree):
        state = BooleanState(tree)
        # Leaf 3: one live left-sibling (leaf 2).
        assert state.pruning_number(3) == 1
        # Leaf 5: node 1 is a live left-sibling of node 4.
        assert state.pruning_number(5) == 1
        # Leaf 6: node 1 plus leaf 5.
        assert state.pruning_number(6) == 2

    def test_dead_siblings_do_not_count(self, tree):
        state = BooleanState(tree)
        state.evaluate_leaf(2)  # kills node 1
        assert state.pruning_number(5) == 0
        assert state.pruning_number(6) == 1
