"""The engine × backend × executor support matrix, pinned loudly.

Every solver entry point accepts ``backend=`` (and most now
``executor=``); the combinations that cannot work must be rejected at
entry time with a typed
:class:`~repro.errors.BackendUnsupportedError` naming the engine and
the offending pair — never a silent fallback, and never a bare
``ValueError`` that callers cannot distinguish from a typo.  This
suite walks the full matrix: every supported cell runs, every
unsupported cell raises with the right attributes.
"""

from __future__ import annotations

import pytest

from repro.core import parallel_solve, saturation_solve, team_solve
from repro.core.alphabeta import (
    parallel_alpha_beta,
    sequential_alpha_beta,
)
from repro.core.nodeexpansion import n_parallel_solve
from repro.core.parallel_solve import BACKENDS, EXECUTORS
from repro.core.shm import ShmOptions
from repro.errors import BackendUnsupportedError, ReproError
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import iid_minmax, level_invariant_bias

#: (label, callable(tree, backend, executor)) per Boolean engine.
BOOLEAN_ENGINES = [
    (
        "parallel-solve",
        lambda t, b, e: parallel_solve(t, 1, backend=b, executor=e),
    ),
    (
        "saturation-solve",
        lambda t, b, e: saturation_solve(t, backend=b, executor=e),
    ),
    (
        "team-solve",
        lambda t, b, e: team_solve(t, 2, backend=b, executor=e),
    ),
]

MINMAX_ENGINES = [
    (
        "sequential-alpha-beta",
        lambda t, b, e: sequential_alpha_beta(t, backend=b, executor=e),
    ),
    (
        "parallel-alpha-beta",
        lambda t, b, e: parallel_alpha_beta(t, 1, backend=b, executor=e),
    ),
]

ALL_ENGINES = BOOLEAN_ENGINES + MINMAX_ENGINES


@pytest.fixture(scope="module")
def boolean_tree():
    return iid_boolean(3, 4, level_invariant_bias(3), seed=5)


@pytest.fixture(scope="module")
def minmax_tree():
    return iid_minmax(3, 4, seed=5)


def _tree_for(label, boolean_tree, minmax_tree):
    return (
        minmax_tree if "alpha-beta" in label else boolean_tree
    )


class TestSupportedCells:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("label,run", ALL_ENGINES)
    def test_inline_runs_on_every_backend(
        self, label, run, backend, boolean_tree, minmax_tree
    ):
        tree = _tree_for(label, boolean_tree, minmax_tree)
        result = run(tree, backend, "inline")
        assert result.num_steps >= 1

    @pytest.mark.parametrize("label,run", ALL_ENGINES)
    def test_shm_runs_on_arena(
        self, label, run, boolean_tree, minmax_tree
    ):
        tree = _tree_for(label, boolean_tree, minmax_tree)
        inline = run(tree, "arena", "inline")
        shm = run(tree, "arena", "shm")
        assert (shm.value, shm.num_steps, shm.total_work) == (
            inline.value, inline.num_steps, inline.total_work
        )


class TestRejectedCells:
    @pytest.mark.parametrize("backend", ("incremental", "rescan"))
    @pytest.mark.parametrize("label,run", ALL_ENGINES)
    def test_shm_rejected_off_arena(
        self, label, run, backend, boolean_tree, minmax_tree
    ):
        tree = _tree_for(label, boolean_tree, minmax_tree)
        with pytest.raises(BackendUnsupportedError) as exc_info:
            run(tree, backend, "shm")
        err = exc_info.value
        assert err.engine == label
        assert err.backend == backend
        assert err.executor == "shm"
        assert label in str(err) and backend in str(err)

    def test_n_parallel_solve_rejects_arena(self, boolean_tree):
        with pytest.raises(
            BackendUnsupportedError, match="no arena backend"
        ) as exc_info:
            n_parallel_solve(boolean_tree, 1, backend="arena")
        err = exc_info.value
        assert err.engine == "n-parallel-solve"
        assert err.backend == "arena"
        assert err.executor is None

    def test_n_parallel_solve_rejection_is_a_value_error(
        self, boolean_tree
    ):
        # Pre-typed-hierarchy callers caught ValueError; both the
        # class relationship and the message substring are contract.
        with pytest.raises(ValueError, match="no arena backend"):
            n_parallel_solve(boolean_tree, 1, backend="arena")

    @pytest.mark.parametrize(
        "engine,run",
        [
            (
                "parallel-solve",
                lambda t, hook: parallel_solve(
                    t, 1, backend="arena", executor="shm", on_step=hook
                ),
            ),
            (
                "parallel-alpha-beta",
                lambda t, hook: parallel_alpha_beta(
                    t, 1, backend="arena", executor="shm", on_step=hook
                ),
            ),
        ],
    )
    def test_on_step_conflicts_with_shm(
        self, engine, run, boolean_tree, minmax_tree
    ):
        tree = _tree_for(engine, boolean_tree, minmax_tree)
        hook_calls = []
        with pytest.raises(BackendUnsupportedError) as exc_info:
            run(tree, lambda *a: hook_calls.append(a))
        assert exc_info.value.engine == engine
        assert not hook_calls


class TestErrorShape:
    def test_is_repro_and_value_error(self):
        err = BackendUnsupportedError(
            "nope", engine="e", backend="b", executor="x"
        )
        assert isinstance(err, ReproError)
        assert isinstance(err, ValueError)
        assert (err.engine, err.backend, err.executor) == ("e", "b", "x")

    @pytest.mark.parametrize("label,run", ALL_ENGINES)
    def test_unknown_backend_still_plain_value_error(
        self, label, run, boolean_tree, minmax_tree
    ):
        tree = _tree_for(label, boolean_tree, minmax_tree)
        with pytest.raises(ValueError, match="unknown backend"):
            run(tree, "bogus", "inline")

    @pytest.mark.parametrize("label,run", ALL_ENGINES)
    def test_unknown_executor_still_plain_value_error(
        self, label, run, boolean_tree, minmax_tree
    ):
        tree = _tree_for(label, boolean_tree, minmax_tree)
        with pytest.raises(ValueError, match="unknown executor"):
            run(tree, "arena", "bogus")


def test_shm_options_threading(boolean_tree):
    """shm_options reaches the pool (observable via run stats)."""
    result = parallel_solve(
        boolean_tree, 1, backend="arena", executor="shm",
        shm_options=ShmOptions(workers=2, chunk_size=1),
    )
    # chunk_size=1 means one chunk per leaf evaluated.
    assert result.stats.chunks == result.stats.units == result.total_work
