"""Unit tests for bounded-processor and saturation SOLVE variants."""

import pytest

from repro.core import (
    BoundedWidthPolicy,
    BooleanState,
    parallel_solve,
    saturation_solve,
    select_with_pruning_numbers,
    sequential_solve,
    span,
    team_solve,
)
from repro.trees import exact_value
from repro.trees.generators import iid_boolean, sequential_worst_case


class TestSelectionWithNumbers:
    def test_numbers_match_reference(self):
        for seed in range(6):
            t = iid_boolean(2, 6, 0.4, seed=seed)
            state = BooleanState(t)
            for leaf, pn in select_with_pruning_numbers(t, state, 3):
                assert pn == state.pruning_number(leaf)

    def test_numbers_bounded_by_width(self):
        t = iid_boolean(3, 4, 0.4, seed=1)
        state = BooleanState(t)
        for _leaf, pn in select_with_pruning_numbers(t, state, 2):
            assert 0 <= pn <= 2


class TestBoundedProcessors:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_value_correct(self, p):
        t = iid_boolean(2, 8, 0.45, seed=p)
        res = parallel_solve(t, 2, max_processors=p)
        assert res.value == exact_value(t)
        assert res.processors <= p

    def test_one_processor_is_sequential(self):
        # Smallest pruning number, leftmost tie-break, one processor:
        # always the leftmost live leaf.
        t = iid_boolean(2, 7, 0.5, seed=3)
        for w in (1, 3):
            res = parallel_solve(t, w, max_processors=1)
            assert res.evaluated == sequential_solve(t).evaluated

    def test_more_processors_never_slower(self):
        t = iid_boolean(2, 9, 0.4, seed=4)
        steps = [
            parallel_solve(t, 2, max_processors=p).num_steps
            for p in (1, 2, 4, 8, 16)
        ]
        assert all(a >= b for a, b in zip(steps, steps[1:]))

    def test_cap_above_usage_changes_nothing(self):
        t = iid_boolean(2, 8, 0.45, seed=5)
        free = parallel_solve(t, 1)
        capped = parallel_solve(t, 1, max_processors=1000)
        assert free.trace.degrees == capped.trace.degrees

    def test_urgency_ordering(self):
        # The selected subset consists of the smallest pruning numbers.
        t = iid_boolean(2, 6, 0.4, seed=6)
        state = BooleanState(t)
        scored = dict(select_with_pruning_numbers(t, state, 3))
        batch = BoundedWidthPolicy(3, 3)(t, state)
        chosen = sorted(scored[leaf] for leaf in batch)
        rejected = sorted(
            pn for leaf, pn in scored.items() if leaf not in batch
        )
        assert len(batch) == 3
        if rejected:
            assert chosen[-1] <= rejected[0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BoundedWidthPolicy(-1, 2)
        with pytest.raises(ValueError):
            BoundedWidthPolicy(1, 0)


class TestSaturationAndSpan:
    def test_value_correct(self):
        t = iid_boolean(2, 7, 0.5, seed=7)
        assert saturation_solve(t).value == exact_value(t)

    def test_span_lower_bounds_all_policies(self):
        for seed in range(5):
            t = iid_boolean(2, 7, 0.45, seed=seed)
            sp = span(t)
            assert sp <= parallel_solve(t, 1).num_steps
            assert sp <= parallel_solve(t, 3).num_steps
            assert sp <= team_solve(t, 64).num_steps
            assert sp <= sequential_solve(t).num_steps

    def test_span_at_most_leaf_count_depthish(self):
        t = sequential_worst_case(2, 8)
        # Worst-case instance: every leaf matters; the span is still
        # far below the sequential cost.
        assert span(t) < sequential_solve(t).num_steps

    def test_span_of_single_leaf(self):
        from repro.trees import ExplicitTree

        t = ExplicitTree([()], {0: 1})
        assert span(t) == 1
