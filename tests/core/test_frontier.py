"""Unit tests for the incremental frontier engine."""

import pytest

from repro.core.frontier import (
    FrontierIndex,
    IncrementalSequentialPolicy,
    IncrementalTeamPolicy,
    IncrementalWidthPolicy,
)
from repro.core.policies import WidthPolicy, rank_by_urgency
from repro.core.status import BooleanState
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


def _index(tree, state, width):
    idx = FrontierIndex(
        tree, state, width=width, settled=state.value.__contains__
    )
    state.subscribe(idx.on_settled)
    return idx


@pytest.fixture
def tree():
    return iid_boolean(3, 4, level_invariant_bias(3), seed=7)


class TestConstruction:
    def test_negative_width_rejected(self, tree):
        state = BooleanState(tree)
        with pytest.raises(ValueError):
            FrontierIndex(
                tree, state, width=-1,
                settled=state.value.__contains__,
            )

    def test_initial_batch_matches_rescan(self, tree):
        for width in (0, 1, 2, 5):
            state = BooleanState(tree)
            idx = _index(tree, state, width)
            assert idx.batch() == WidthPolicy(width)(tree, state)


class TestMidRunBind:
    """An index built against a half-evaluated state must agree with a
    fresh rescan — binding time must not matter."""

    def test_batch_matches_after_partial_run(self, tree):
        width = 2
        state = BooleanState(tree)
        driver = _index(tree, state, width)
        for _ in range(5):
            for leaf in driver.batch():
                state.evaluate_leaf(leaf)
        late_state = BooleanState(tree)
        for leaf in state.evaluated:
            # Replay evaluations in a fresh state for the late binder.
            if late_state.is_live(leaf) and leaf not in late_state.evaluated:
                late_state.evaluate_leaf(leaf)
        late = _index(tree, late_state, width)
        assert late.batch() == WidthPolicy(width)(tree, late_state)

    def test_pruning_numbers_match_state(self, tree):
        width = 3
        state = BooleanState(tree)
        idx = _index(tree, state, width)
        for _ in range(4):
            batch = idx.batch()
            if not batch:
                break
            for leaf in batch:
                assert idx.pruning_number(leaf) == \
                    state.pruning_number(leaf)
            for leaf in batch:
                state.evaluate_leaf(leaf)


class TestSelection:
    def test_most_urgent_equals_rank_by_urgency(self, tree):
        width, procs = 3, 2
        state = BooleanState(tree)
        idx = _index(tree, state, width)
        while True:
            scored = idx.scored_batch()
            if not scored:
                break
            expected = (
                [leaf for leaf, _ in scored]
                if len(scored) <= procs
                else rank_by_urgency(scored, procs)
            )
            selection = idx.most_urgent(procs)
            assert selection == expected
            for leaf in selection:
                state.evaluate_leaf(leaf)

    def test_first_returns_leftmost(self, tree):
        state = BooleanState(tree)
        idx = FrontierIndex(
            tree, state, width=None,
            settled=state.value.__contains__,
        )
        batch = idx.batch()
        assert idx.first(3) == batch[:3]


class TestRemoval:
    def test_settled_root_empties_frontier(self, tree):
        state = BooleanState(tree)
        idx = _index(tree, state, 2)
        while idx.batch():
            for leaf in idx.batch():
                state.evaluate_leaf(leaf)
        assert state.root_value() is not None
        assert idx.batch() == []
        assert idx.first(10) == []

    def test_settled_subtree_not_selected(self, tree):
        state = BooleanState(tree)
        idx = _index(tree, state, 1)
        batch = idx.batch()
        for leaf in batch:
            state.evaluate_leaf(leaf)
        for leaf in idx.batch():
            assert state.is_live(leaf)
            assert leaf not in state.evaluated


class TestUnboundedMode:
    def test_no_budgets(self, tree):
        state = BooleanState(tree)
        idx = FrontierIndex(
            tree, state, width=None,
            settled=state.value.__contains__,
        )
        with pytest.raises(ValueError):
            idx.scored_batch()
        with pytest.raises(ValueError):
            idx.most_urgent(2)
        with pytest.raises(ValueError):
            idx.pruning_number(tree.root)


class TestPolicyBinding:
    def test_index_rebound_per_state(self, tree):
        policy = IncrementalWidthPolicy(1)
        s1, s2 = BooleanState(tree), BooleanState(tree)
        first = policy(tree, s1)
        for leaf in first:
            s1.evaluate_leaf(leaf)
        # A new state must get a fresh index, not the advanced one.
        assert policy(tree, s2) == first

    def test_policy_names_mention_backend(self):
        assert "incremental" in IncrementalWidthPolicy(2).name
        assert "incremental" in IncrementalTeamPolicy(3).name
        assert "incremental" in IncrementalSequentialPolicy().name

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IncrementalWidthPolicy(-1)
        with pytest.raises(ValueError):
            IncrementalTeamPolicy(0)
