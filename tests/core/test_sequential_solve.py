"""Unit tests for the fast recursive Sequential SOLVE."""

import pytest

from repro.core import sequential_leaf_set, sequential_solve, solve_subtree
from repro.trees import ExplicitTree, exact_value
from repro.trees.generators import iid_boolean
from repro.types import Gate


class TestShortCircuit:
    def test_nor_stops_at_first_one(self):
        t = ExplicitTree.from_nested([1, 1, 1])
        res = sequential_solve(t)
        assert res.value == 0
        assert res.evaluated == [1]  # only the first leaf

    def test_nor_reads_all_zeros(self):
        t = ExplicitTree.from_nested([0, 0, 0])
        res = sequential_solve(t)
        assert res.value == 1
        assert res.evaluated == [1, 2, 3]

    def test_or_stops_at_first_one(self):
        t = ExplicitTree.from_nested([0, 1, 1], gates=Gate.OR)
        res = sequential_solve(t)
        assert res.value == 1
        assert res.evaluated == [1, 2]

    def test_and_stops_at_first_zero(self):
        t = ExplicitTree.from_nested([1, 0, 1], gates=Gate.AND)
        res = sequential_solve(t)
        assert res.value == 0
        assert res.evaluated == [1, 2]

    def test_nand(self):
        t = ExplicitTree.from_nested([1, 0, 1], gates=Gate.NAND)
        res = sequential_solve(t)
        assert res.value == 1
        assert res.evaluated == [1, 2]

    def test_nested_example_from_paper_semantics(self):
        # S-SOLVE on NOR tree: returns 0 as soon as a child yields 1.
        t = ExplicitTree.from_nested([[0, 0], [1, 1]])
        res = sequential_solve(t)
        # Child 1 = NOR(0,0) = 1 -> root returns 0 immediately.
        assert res.value == 0
        assert res.evaluated == [2, 3]

    def test_alternating_andor(self):
        t = ExplicitTree.from_nested(
            [[1, 0], [0, 0]], gates=[Gate.OR, Gate.AND]
        )
        res = sequential_solve(t)
        # OR(AND(1,0), AND(0,0)) = 0; reads leaves 2, 3 (first AND),
        # then leaf 5 short-circuits the second AND.
        assert res.value == 0
        assert res.evaluated == [2, 3, 5]


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(15))
    def test_value_matches_exact(self, seed):
        t = iid_boolean(2 + seed % 2, 5, 0.3 + 0.05 * (seed % 5),
                        seed=seed)
        assert sequential_solve(t).value == exact_value(t)

    def test_trace_is_unit_steps(self):
        t = iid_boolean(2, 6, 0.5, seed=0)
        res = sequential_solve(t)
        assert res.trace.degrees == [1] * res.num_steps
        assert res.total_work == res.num_steps
        assert res.processors == 1

    def test_leaf_set_helper(self):
        t = iid_boolean(2, 5, 0.5, seed=1)
        assert sequential_leaf_set(t) == sequential_solve(t).evaluated

    def test_solve_subtree_on_inner_node(self):
        t = ExplicitTree.from_nested([[1, 0], [0, 0]])
        val, leaves = solve_subtree(t, 4)
        assert val == exact_value(t, 4)
        assert leaves == [5, 6]

    def test_deep_tree_no_recursion_error(self):
        depth = 4000
        children = [(i + 1,) for i in range(depth)] + [()]
        t = ExplicitTree(children, {depth: 0})
        res = sequential_solve(t)
        assert res.value == exact_value(t)
