"""Unit tests for the shared-memory segment layer.

Covers the publish/attach/close lifecycle of
:class:`repro.core.shm.segments.ArenaSegments` in-process: column
contents, idempotent teardown, name uniqueness, and the failure modes
(attach to a vanished spec, pooling over closed segments).
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.shm import ArenaSegments, SegmentSpec, ShmPool
from repro.trees.canonical import canonical_arrays
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture()
def arrays():
    tree = iid_boolean(3, 4, level_invariant_bias(3), seed=9)
    return canonical_arrays(tree)


def _gone(name: str) -> bool:
    try:
        blk = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    blk.close()
    return False


class TestPublish:
    def test_columns_match_arrays(self, arrays):
        with ArenaSegments.publish(arrays) as segments:
            leaves = np.flatnonzero(arrays.is_leaf)
            np.testing.assert_array_equal(
                segments.values[leaves], arrays.values[leaves]
            )
            assert segments.values.shape == (arrays.n_nodes,)
            assert segments.batch.dtype == np.int64
            assert segments.out.dtype == np.float64

    def test_spec_is_picklable_plain_data(self, arrays):
        import pickle

        with ArenaSegments.publish(arrays) as segments:
            spec = segments.spec
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            assert isinstance(clone, SegmentSpec)
            assert clone.n_nodes == arrays.n_nodes

    def test_unique_names_across_sessions(self, arrays):
        with ArenaSegments.publish(arrays) as a:
            with ArenaSegments.publish(arrays) as b:
                names_a = {
                    a.spec.values_name, a.spec.batch_name, a.spec.out_name
                }
                names_b = {
                    b.spec.values_name, b.spec.batch_name, b.spec.out_name
                }
                assert len(names_a) == 3
                assert not names_a & names_b


class TestAttach:
    def test_attach_sees_owner_writes(self, arrays):
        with ArenaSegments.publish(arrays) as owner:
            view = ArenaSegments.attach(owner.spec)
            try:
                owner.batch[0] = 42
                owner.out[1] = 0.5
                assert int(view.batch[0]) == 42
                assert float(view.out[1]) == 0.5
                # ...and the other direction (workers write `out`).
                view.out[2] = 7.0
                assert float(owner.out[2]) == 7.0
            finally:
                view.close()

    def test_attacher_close_does_not_unlink(self, arrays):
        with ArenaSegments.publish(arrays) as owner:
            view = ArenaSegments.attach(owner.spec)
            view.close()
            assert not _gone(owner.spec.values_name)
        assert _gone(owner.spec.values_name)

    def test_attach_after_unlink_raises(self, arrays):
        segments = ArenaSegments.publish(arrays)
        spec = segments.spec
        segments.close()
        with pytest.raises(FileNotFoundError):
            ArenaSegments.attach(spec)


class TestClose:
    def test_owner_close_unlinks_all_three(self, arrays):
        segments = ArenaSegments.publish(arrays)
        spec = segments.spec
        segments.close()
        assert segments.closed
        for name in (spec.values_name, spec.batch_name, spec.out_name):
            assert _gone(name)

    def test_close_is_idempotent(self, arrays):
        segments = ArenaSegments.publish(arrays)
        segments.close()
        segments.close()
        assert segments.closed

    def test_close_drops_views(self, arrays):
        segments = ArenaSegments.publish(arrays)
        segments.close()
        assert segments.values is None
        assert segments.batch is None
        assert segments.out is None

    def test_pool_over_closed_segments_rejected(self, arrays):
        segments = ArenaSegments.publish(arrays)
        segments.close()
        with pytest.raises(ValueError, match="closed segments"):
            ShmPool(segments)
