"""Buffer-lifecycle guarantees of the shared-memory executor.

The contract under test: no ``/dev/shm`` entry (and no resource-
tracker registration) survives a session — not on clean shutdown, not
on crash-rebuild, not on the degraded path where the pool's circuit
breaker aborts the run mid-step.  Leaked segments are how shared-
memory backends rot: each one pins real pages until reboot, and the
resource tracker's exit-time sweep both warns and races concurrent
runs.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import resource_tracker, shared_memory

import pytest

from repro.core import parallel_solve
from repro.core.shm import ArenaSegments, ShmOptions, ShmSession
from repro.core.shm.pool import _worker_init
from repro.errors import DegradedRunError, WorkerCrashError
from repro.trees.canonical import canonical_arrays
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias

SHM_DIR = "/dev/shm"


def _session_names(session: ShmSession) -> tuple:
    spec = session.segments.spec
    return (spec.values_name, spec.batch_name, spec.out_name)


def _live(name: str) -> bool:
    try:
        blk = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    blk.close()
    return True


def _dev_shm_entries() -> set:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-tmpfs CI
        return set()
    return {f for f in os.listdir(SHM_DIR) if f.startswith("repro_")}


def _tracker_unregister_is_clean(name: str) -> bool:
    """After a proper unlink the tracker no longer knows the name, so
    a second unregister must be a silent no-op (set-discard)."""
    resource_tracker.unregister("/" + name, "shared_memory")
    return True


@pytest.fixture()
def tree():
    return iid_boolean(3, 4, level_invariant_bias(3), seed=13)


class _CrashOnce:
    """Leaf oracle that kills its worker process exactly once."""

    def __init__(self, marker: str) -> None:
        self.marker = marker

    def __call__(self, value: float, index: int) -> float:
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write("crashed")
            os._exit(1)
        return value


class _CrashAlways:
    def __call__(self, value: float, index: int) -> float:
        os._exit(1)


class TestCleanShutdown:
    def test_session_close_unlinks_everything(self, tree):
        before = _dev_shm_entries()
        with ShmSession(tree, ShmOptions(workers=2)) as session:
            names = _session_names(session)
            result = session.parallel_solve(1)
            assert result.num_steps >= 1
            for name in names:
                assert _live(name)
        for name in names:
            assert not _live(name)
            assert _tracker_unregister_is_clean(name)
        assert _dev_shm_entries() == before

    def test_close_idempotent_and_exception_safe(self, tree):
        session = ShmSession(tree, ShmOptions(workers=1))
        names = _session_names(session)
        session.close()
        session.close()
        for name in names:
            assert not _live(name)

    def test_exception_inside_with_still_unlinks(self, tree):
        names = ()
        with pytest.raises(RuntimeError, match="boom"):
            with ShmSession(tree, ShmOptions(workers=1)) as session:
                names = _session_names(session)
                raise RuntimeError("boom")
        for name in names:
            assert not _live(name)


class TestCrashRebuild:
    def test_crash_rebuild_reattaches_and_unlinks(self, tree, tmp_path):
        before = _dev_shm_entries()
        baseline = parallel_solve(tree, 1, backend="arena")
        oracle = _CrashOnce(str(tmp_path / "crash-marker"))
        with ShmSession(
            tree,
            ShmOptions(workers=2, oracle=oracle, backoff_seconds=0.01),
        ) as session:
            names = _session_names(session)
            result = session.parallel_solve(1)
            # The rebuilt pool re-ran the initializer (re-attach) and
            # converged to the exact fault-free result.
            assert session.pool.stats.pool_restarts >= 1
            assert result.value == baseline.value
            assert result.num_steps == baseline.num_steps
        for name in names:
            assert not _live(name)
        assert _dev_shm_entries() == before

    def test_retry_exhaustion_still_unlinks(self, tree):
        before = _dev_shm_entries()
        names = ()
        with pytest.raises(WorkerCrashError):
            with ShmSession(
                tree,
                ShmOptions(
                    workers=1, oracle=_CrashAlways(),
                    max_retries=1, backoff_seconds=0.01,
                ),
            ) as session:
                names = _session_names(session)
                session.parallel_solve(1)
        for name in names:
            assert not _live(name)
        assert _dev_shm_entries() == before


class TestDegradedPath:
    def test_degraded_run_unlinks_and_reports_steps(self, tree):
        before = _dev_shm_entries()
        names = ()
        with pytest.raises(DegradedRunError) as exc_info:
            with ShmSession(
                tree,
                ShmOptions(
                    workers=1, oracle=_CrashAlways(),
                    max_retries=8, backoff_seconds=0.01,
                    max_consecutive_rebuilds=2,
                ),
            ) as session:
                names = _session_names(session)
                session.parallel_solve(1)
        err = exc_info.value
        assert err.steps_completed == 0
        assert err.pending >= 1
        for name in names:
            assert not _live(name)
            assert _tracker_unregister_is_clean(name)
        assert _dev_shm_entries() == before


class TestInProcessAttach:
    def test_thread_executor_runs_initializer_in_process(self, tree):
        """Injected executors exercise the same attach path (and the
        initializer closes a previously inherited mapping)."""
        before = _dev_shm_entries()

        def factory(spec, oracle):
            return ThreadPoolExecutor(
                max_workers=2,
                initializer=_worker_init,
                initargs=(spec, oracle),
            )

        baseline = parallel_solve(tree, 1, backend="arena")
        with ShmSession(
            tree, ShmOptions(workers=2, executor_factory=factory)
        ) as session:
            first = session.parallel_solve(1)
            second = session.parallel_solve(1)
        assert first.value == second.value == baseline.value
        assert _dev_shm_entries() == before

    def test_segments_context_manager_balanced(self, tree):
        arrays = canonical_arrays(tree)
        before = _dev_shm_entries()
        with ArenaSegments.publish(arrays):
            assert len(_dev_shm_entries() - before) == 3
        assert _dev_shm_entries() == before
