"""Unit tests for selection policies, cross-checked against the
brute-force pruning-number definition."""

import numpy as np
import pytest

from repro.core import (
    BooleanState,
    SequentialPolicy,
    TeamPolicy,
    WidthPolicy,
    select_by_pruning_number,
    select_leftmost_live,
)
from repro.trees import ExplicitTree
from repro.trees.generators import iid_boolean


def brute_force_width_selection(tree, state, width):
    """All live leaves with pruning number <= width, by definition."""
    return [
        leaf
        for leaf in tree.iter_leaves()
        if state.is_live(leaf) and state.pruning_number(leaf) <= width
    ]


@pytest.fixture
def tree():
    return ExplicitTree.from_nested([[1, 0], [0, [0, 1]], 1])


class TestLeftmostSelection:
    def test_first_leaf(self, tree):
        state = BooleanState(tree)
        assert select_leftmost_live(tree, state, 1) == [2]

    def test_first_three(self, tree):
        state = BooleanState(tree)
        assert select_leftmost_live(tree, state, 3) == [2, 3, 5]

    def test_skips_dead_subtrees(self, tree):
        state = BooleanState(tree)
        state.evaluate_leaf(2)  # kills node 1's subtree
        assert select_leftmost_live(tree, state, 2) == [5, 7]

    def test_more_than_available(self, tree):
        state = BooleanState(tree)
        got = select_leftmost_live(tree, state, 99)
        assert got == [2, 3, 5, 7, 8, 9]

    def test_empty_when_root_determined(self, tree):
        state = BooleanState(tree)
        state.evaluate_leaf(9)  # leaf value 1 -> root NOR = 0
        assert select_leftmost_live(tree, state, 5) == []


class TestWidthSelection:
    @pytest.mark.parametrize("width", [0, 1, 2, 3])
    def test_matches_brute_force_initial(self, tree, width):
        state = BooleanState(tree)
        assert select_by_pruning_number(tree, state, width) == \
            brute_force_width_selection(tree, state, width)

    @pytest.mark.parametrize("width", [0, 1, 2, 5])
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_midgame(self, width, seed):
        rng = np.random.default_rng(seed)
        tree = iid_boolean(
            int(rng.integers(2, 4)), int(rng.integers(2, 5)),
            0.4, seed=seed,
        )
        state = BooleanState(tree)
        # Evaluate a random subset of live leaves to mid-game state.
        for _ in range(4):
            live = select_leftmost_live(tree, state, 50)
            if not live:
                break
            state.evaluate_leaf(live[int(rng.integers(len(live)))])
            if state.root_value() is not None:
                break
        if state.root_value() is None:
            assert select_by_pruning_number(tree, state, width) == \
                brute_force_width_selection(tree, state, width)

    def test_width_zero_is_leftmost(self, tree):
        state = BooleanState(tree)
        assert select_by_pruning_number(tree, state, 0) == \
            select_leftmost_live(tree, state, 1)

    def test_left_to_right_order(self, tree):
        state = BooleanState(tree)
        sel = select_by_pruning_number(tree, state, 2)
        leaf_order = list(tree.iter_leaves())
        positions = [leaf_order.index(s) for s in sel]
        assert positions == sorted(positions)

    def test_width_one_on_uniform_tree_uses_n_plus_1(self):
        tree = iid_boolean(2, 8, 0.5, seed=0)
        state = BooleanState(tree)
        sel = select_by_pruning_number(tree, state, 1)
        assert len(sel) <= 9


class TestPolicyObjects:
    def test_sequential_policy(self, tree):
        state = BooleanState(tree)
        assert SequentialPolicy()(tree, state) == [2]

    def test_team_policy(self, tree):
        state = BooleanState(tree)
        assert TeamPolicy(2)(tree, state) == [2, 3]

    def test_width_policy(self, tree):
        state = BooleanState(tree)
        assert WidthPolicy(1)(tree, state) == \
            brute_force_width_selection(tree, state, 1)

    def test_invalid_team_size(self):
        with pytest.raises(ValueError):
            TeamPolicy(0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            WidthPolicy(-1)

    def test_policy_names(self):
        assert "team" in TeamPolicy(4).name
        assert "w=2" in WidthPolicy(2).name
