"""Unit tests for the columnar arena engines and selection kernels."""

import numpy as np
import pytest

from repro.core import (
    ArenaAlphaBetaWidthPolicy,
    ArenaBoundedWidthPolicy,
    ArenaSaturationPolicy,
    ArenaTeamPolicy,
    ArenaWidthPolicy,
    arena_parallel_solve,
    arena_saturation_solve,
    arena_team_solve,
    parallel_solve,
    saturation_solve,
    team_solve,
)
from repro.core.alphabeta import (
    parallel_alpha_beta,
    sequential_alpha_beta,
)
from repro.core.arena import arena_alpha_beta
from repro.core.arena import most_urgent, select_width
from repro.core.nodeexpansion import n_parallel_solve
from repro.errors import ModelViolationError
from repro.telemetry import InMemoryRecorder
from repro.trees import ExplicitTree, canonical_arrays
from repro.trees.generators import iid_boolean, iid_minmax
from repro.trees.generators.iid import level_invariant_bias
from repro.types import Gate, TreeKind


def _signature(result):
    return (result.value, result.trace.degrees, result.trace.batches)


@pytest.fixture(scope="module")
def boolean_tree():
    return iid_boolean(3, 5, level_invariant_bias(3), seed=17)


@pytest.fixture(scope="module")
def minmax_tree():
    return iid_minmax(3, 5, seed=17)


# ---------------------------------------------------------------------------
# engines
# ---------------------------------------------------------------------------
def test_pure_engines_match_incremental(boolean_tree):
    for width in (0, 1, 3):
        arena = arena_parallel_solve(
            boolean_tree, width, keep_batches=True
        )
        reference = parallel_solve(
            boolean_tree, width, keep_batches=True, backend="incremental"
        )
        assert _signature(arena) == _signature(reference)
        assert arena.evaluated == reference.evaluated


def test_bounded_single_processor(boolean_tree):
    arena = arena_parallel_solve(
        boolean_tree, 2, max_processors=1, keep_batches=True
    )
    reference = parallel_solve(
        boolean_tree, 2, max_processors=1, keep_batches=True,
        backend="incremental",
    )
    assert _signature(arena) == _signature(reference)
    assert all(len(batch) == 1 for batch in arena.trace.batches)


def test_team_and_saturation(boolean_tree):
    for procs in (1, 3):
        arena = arena_team_solve(boolean_tree, procs, keep_batches=True)
        reference = team_solve(
            boolean_tree, procs, keep_batches=True, backend="incremental"
        )
        assert _signature(arena) == _signature(reference)
    arena = arena_saturation_solve(boolean_tree, keep_batches=True)
    reference = saturation_solve(
        boolean_tree, keep_batches=True, backend="incremental"
    )
    assert _signature(arena) == _signature(reference)


def test_alpha_beta_widths(minmax_tree):
    for width in (0, 1, 2):
        arena = arena_alpha_beta(minmax_tree, width, keep_batches=True)
        reference = parallel_alpha_beta(
            minmax_tree, width, keep_batches=True, backend="incremental"
        )
        assert _signature(arena) == _signature(reference)
        assert arena.evaluated == reference.evaluated


def test_alpha_beta_width0_is_sequential(minmax_tree):
    arena = sequential_alpha_beta(minmax_tree, backend="arena")
    reference = sequential_alpha_beta(minmax_tree, backend="incremental")
    assert arena.value == reference.value
    assert arena.num_steps == reference.num_steps


def test_policy_names_tag_the_arena():
    assert ArenaWidthPolicy(2).name == "parallel-solve(w=2, arena)"
    assert ArenaBoundedWidthPolicy(2, 3).name == (
        "parallel-solve(w=2, p=3, arena)"
    )
    assert ArenaTeamPolicy(2).name == "team-solve(p=2, arena)"
    assert ArenaSaturationPolicy().name == "saturation-solve(arena)"
    assert ArenaAlphaBetaWidthPolicy(1).name == (
        "parallel-alpha-beta(w=1, arena)"
    )


def test_max_steps_enforced(boolean_tree):
    with pytest.raises(ModelViolationError):
        arena_parallel_solve(boolean_tree, 0, max_steps=2)


def test_boolean_engine_rejects_minmax(minmax_tree):
    with pytest.raises(ValueError):
        arena_parallel_solve(minmax_tree, 1)


def test_nodeexpansion_rejects_arena(boolean_tree):
    with pytest.raises(ValueError, match="no arena backend"):
        n_parallel_solve(boolean_tree, 1, backend="arena")


def test_hybrid_on_step_sees_real_state(boolean_tree):
    seen = []

    def on_step(state, step, batch):
        seen.append((step, len(batch)))
        assert hasattr(state, "value")  # a real BooleanState

    hybrid = parallel_solve(
        boolean_tree, 2, keep_batches=True, backend="arena",
        on_step=on_step,
    )
    reference = parallel_solve(
        boolean_tree, 2, keep_batches=True, backend="incremental"
    )
    assert _signature(hybrid) == _signature(reference)
    assert len(seen) == hybrid.num_steps


def test_recorder_streams_match_modulo_frontier_counters(boolean_tree):
    arena_rec = InMemoryRecorder()
    arena_parallel_solve(boolean_tree, 2, recorder=arena_rec)
    incr_rec = InMemoryRecorder()
    parallel_solve(
        boolean_tree, 2, backend="incremental", recorder=incr_rec
    )
    incr_events = [
        e for e in incr_rec.events
        if not e.name.startswith("frontier.")
    ]
    assert arena_rec.events == incr_events


def test_alpha_beta_recorder_has_pruned_spans(minmax_tree):
    rec = InMemoryRecorder()
    arena_alpha_beta(minmax_tree, 1, recorder=rec)
    spans = [e for e in rec.events if e.kind == "span"]
    assert spans and all(e.track == "alphabeta" for e in spans)
    assert any(dict(e.attrs).get("pruned", 0) > 0 for e in spans)


def test_irregular_explicit_tree():
    # Arity-1 chain into mixed gates — exercises non-uniform levels.
    tree = ExplicitTree(
        children=[[1], [2, 3], [4, 5], [], [], []],
        leaf_values={3: 0, 4: 1, 5: 0},
        kind=TreeKind.BOOLEAN,
        gates={0: Gate.NAND, 1: Gate.OR, 2: Gate.AND},
    )
    for width in (0, 1, 2):
        arena = arena_parallel_solve(tree, width, keep_batches=True)
        reference = parallel_solve(
            tree, width, keep_batches=True, backend="incremental"
        )
        assert _signature(arena) == _signature(reference)


# ---------------------------------------------------------------------------
# selection kernels
# ---------------------------------------------------------------------------
def test_select_width_scores_are_pruning_numbers(boolean_tree):
    arrays = canonical_arrays(boolean_tree)
    settled = np.zeros(arrays.n_nodes, dtype=bool)
    budget = np.zeros(arrays.n_nodes, dtype=np.int64)
    width = 2
    leaves = select_width(arrays, settled, width, budget)
    # On a fresh tree the live leaves of pruning number <= w are exactly
    # what the reference policy's first batch evaluates.
    reference = parallel_solve(
        boolean_tree, width, keep_batches=True, backend="incremental"
    )
    index = arrays.index_map()
    expected = sorted(index[n] for n in reference.trace.batches[0])
    assert leaves.tolist() == expected
    scores = width - budget[leaves]
    assert (scores >= 0).all() and (scores <= width).all()


def test_most_urgent_prefix_of_counting_sort():
    leaves = np.arange(6, dtype=np.int64)
    scores = np.array([2, 1, 3, 1, 2, 3], dtype=np.int64)
    # p >= len: everything is selected.
    assert most_urgent(leaves, scores, 3, 10).tolist() == list(range(6))
    # p = 3: both score-1 leaves, then the leftmost score-2 leaf.
    assert most_urgent(leaves, scores, 3, 3).tolist() == [0, 1, 3]
    # p = 1: ties at the cutoff break leftmost-first.
    assert most_urgent(leaves, scores, 3, 1).tolist() == [1]
