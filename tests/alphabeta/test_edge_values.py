"""Edge cases for MIN/MAX algorithms: extreme and degenerate values."""

import pytest

from repro.core.alphabeta import (
    alpha_beta,
    alpha_beta_leaf_set,
    minimax,
    parallel_alpha_beta,
    sequential_alpha_beta,
    scout,
    sss_star,
)
from repro.trees import ExplicitTree, exact_value
from repro.types import TreeKind


def tree_of(spec):
    return ExplicitTree.from_nested(spec, kind=TreeKind.MINMAX)


ALGORITHMS = [
    minimax,
    alpha_beta,
    sequential_alpha_beta,
    lambda t: parallel_alpha_beta(t, 1),
    scout,
    sss_star,
]


class TestExtremeValues:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_large_magnitudes(self, algo):
        t = tree_of([[1e18, -1e18], [5.0, -5.0]])
        assert algo(t).value == exact_value(t)

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_all_negative(self, algo):
        # MAX(MIN(-3, -1), MIN(-4, -2)) = MAX(-3, -4) = -3.
        t = tree_of([[-3.0, -1.0], [-4.0, -2.0]])
        assert algo(t).value == exact_value(t) == -3.0

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_all_identical(self, algo):
        t = tree_of([[7.0, 7.0], [7.0, 7.0], [7.0, 7.0]])
        assert algo(t).value == 7.0

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_height_one(self, algo):
        t = tree_of([3.0, 1.0, 2.0])
        assert algo(t).value == 3.0  # root is MAX

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_unary_chain(self, algo):
        t = tree_of([[[5.0]]])
        assert algo(t).value == 5.0


class TestDegenerateShapes:
    def test_left_deep_tree(self):
        spec = 1.0
        for i in range(8):
            spec = [spec, float(i)]
        t = tree_of(spec)
        assert sequential_alpha_beta(t).value == exact_value(t)
        assert alpha_beta_leaf_set(t) == \
            sequential_alpha_beta(t).evaluated

    def test_right_deep_tree(self):
        spec = 1.0
        for i in range(8):
            spec = [float(i), spec]
        t = tree_of(spec)
        assert parallel_alpha_beta(t, 1).value == exact_value(t)

    def test_wide_flat_tree(self):
        t = tree_of([[float(i) for i in range(30)],
                     [float(i) for i in range(30, 60)]])
        assert sequential_alpha_beta(t).value == exact_value(t)

    def test_negative_zero_and_zero(self):
        t = tree_of([[0.0, -0.0], [-0.0, 0.0]])
        assert sequential_alpha_beta(t).value == 0.0

    def test_equivalence_holds_on_mixed_arities(self):
        t = tree_of([[1.0], [2.0, 0.5, 3.0], [[4.0, 0.1], 2.5]])
        assert sequential_alpha_beta(t).evaluated == \
            alpha_beta_leaf_set(t)
