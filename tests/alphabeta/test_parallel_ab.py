"""Parallel alpha-beta: correctness, width behaviour, Theorem 2 & 3."""

import pytest

from repro.analysis import theorem2_holds
from repro.core.alphabeta import (
    parallel_alpha_beta,
    sequential_alpha_beta,
)
from repro.trees import exact_value
from repro.trees.generators import iid_minmax, iid_minmax_integers


class TestCorrectness:
    @pytest.mark.parametrize("width", [0, 1, 2, 3])
    def test_value_matches_oracle(self, width):
        for seed in range(5):
            t = iid_minmax(2, 5, seed=seed)
            assert parallel_alpha_beta(t, width).value == exact_value(t)

    @pytest.mark.parametrize("seed", range(5))
    def test_tie_heavy_trees(self, seed):
        t = iid_minmax_integers(3, 4, seed=seed, num_values=2)
        assert parallel_alpha_beta(t, 1).value == exact_value(t)

    def test_width0_equals_sequential(self):
        t = iid_minmax(2, 6, seed=7)
        assert parallel_alpha_beta(t, 0).evaluated == \
            sequential_alpha_beta(t).evaluated


class TestWidthBehaviour:
    def test_wider_never_slower(self):
        t = iid_minmax(2, 8, seed=3)
        steps = [parallel_alpha_beta(t, w).num_steps for w in range(4)]
        assert all(a >= b for a, b in zip(steps, steps[1:]))

    def test_width1_processors_at_most_n_plus_1(self):
        for seed in range(5):
            n = 7
            t = iid_minmax(2, n, seed=seed)
            assert parallel_alpha_beta(t, 1).processors <= n + 1

    def test_theorem3_speedup_positive(self):
        t = iid_minmax(2, 10, seed=5)
        s = sequential_alpha_beta(t).num_steps
        p = parallel_alpha_beta(t, 1).num_steps
        assert s / p > 2.0


class TestTheorem2Invariant:
    @pytest.mark.parametrize("width", [1, 2])
    @pytest.mark.parametrize("seed", range(4))
    def test_pruned_tree_value_preserved_each_step(self, width, seed):
        t = iid_minmax_integers(2, 5, seed=seed, num_values=4)
        truth = exact_value(t)

        def check(state, step, batch):
            assert theorem2_holds(state, truth)

        res = parallel_alpha_beta(t, width, on_step=check)
        assert res.value == truth

    def test_work_never_exceeds_leaf_count(self):
        t = iid_minmax(2, 7, seed=9)
        res = parallel_alpha_beta(t, 1)
        assert res.total_work <= t.num_leaves()

    def test_no_leaf_evaluated_twice(self):
        t = iid_minmax(3, 5, seed=11)
        res = parallel_alpha_beta(t, 2)
        assert len(set(res.evaluated)) == len(res.evaluated)
