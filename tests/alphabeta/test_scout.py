"""Unit tests for the SCOUT baseline."""

import pytest

from repro.core.alphabeta import alpha_beta, minimax, scout
from repro.trees import ExplicitTree, exact_value
from repro.trees.generators import iid_minmax, iid_minmax_integers
from repro.types import TreeKind


class TestScout:
    @pytest.mark.parametrize("seed", range(12))
    def test_value_matches_oracle(self, seed):
        t = iid_minmax(2 + seed % 2, 3 + seed % 4, seed=seed)
        assert scout(t).value == exact_value(t)

    @pytest.mark.parametrize("seed", range(6))
    def test_value_with_ties(self, seed):
        t = iid_minmax_integers(2, 5, seed=seed, num_values=3)
        assert scout(t).value == exact_value(t)

    def test_distinct_leaves_at_most_total(self):
        t = iid_minmax(2, 7, seed=1)
        res = scout(t)
        assert res.distinct_leaves <= t.num_leaves()
        # Events may exceed distinct leaves (re-searches).
        assert len(res.evaluated) >= res.distinct_leaves

    def test_first_child_searched_fully(self):
        t = ExplicitTree.from_nested(
            [[6.0, 8.0], [5.0, 9.0]], kind=TreeKind.MINMAX
        )
        res = scout(t)
        # eval of first MIN child reads both its leaves first.
        assert res.evaluated[:2] == [2, 3]

    def test_test_search_cheaper_than_full(self):
        # On a tree where the first child is best, SCOUT's later
        # children are only tested, reading fewer distinct leaves than
        # minimax would.
        t = iid_minmax(3, 5, seed=4)
        sc = scout(t)
        assert sc.distinct_leaves < minimax(t).total_work

    def test_single_leaf(self):
        t = ExplicitTree([()], {0: 2.5}, kind=TreeKind.MINMAX)
        assert scout(t).value == 2.5

    def test_comparable_to_alpha_beta(self):
        # Not a theorem, but on random instances the distinct-leaf
        # count should be in the same ballpark as alpha-beta's.
        t = iid_minmax(2, 8, seed=6)
        sc = scout(t).distinct_leaves
        ab = alpha_beta(t).total_work
        assert sc <= 3 * ab
