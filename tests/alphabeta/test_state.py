"""Unit tests for AlphaBetaState: finishes, prunes and cascades."""

import pytest

from repro.core.alphabeta import AlphaBetaState
from repro.errors import ModelViolationError
from repro.trees import ExplicitTree
from repro.types import TreeKind


@pytest.fixture
def tree():
    # MAX( MIN(3, 1), MIN(4, 2) ), preorder ids:
    # 0 MAX; 1 MIN (leaves 2=3.0, 3=1.0); 4 MIN (leaves 5=4.0, 6=2.0)
    return ExplicitTree.from_nested(
        [[3.0, 1.0], [4.0, 2.0]], kind=TreeKind.MINMAX
    )


class TestFinishing:
    def test_leaf_finish(self, tree):
        st = AlphaBetaState(tree)
        assert st.finish_leaf(2) == 3.0
        assert st.is_finished(2)
        assert not st.is_finished(1)

    def test_internal_finish_on_last_child(self, tree):
        st = AlphaBetaState(tree)
        st.finish_leaf(2)
        st.finish_leaf(3)
        assert st.finished_value[1] == 1.0  # MIN(3, 1)

    def test_cascade_to_root(self, tree):
        st = AlphaBetaState(tree)
        for leaf in (2, 3, 5, 6):
            st.finish_leaf(leaf)
        assert st.root_value() == 2.0  # MAX(1, 2)

    def test_double_finish_rejected(self, tree):
        st = AlphaBetaState(tree)
        st.finish_leaf(2)
        with pytest.raises(ModelViolationError):
            st.finish_leaf(2)

    def test_finish_internal_rejected(self, tree):
        st = AlphaBetaState(tree)
        with pytest.raises(ModelViolationError):
            st.finish_leaf(1)

    def test_touched_tracks_ancestry(self, tree):
        st = AlphaBetaState(tree)
        st.finish_leaf(5)
        assert 5 in st.touched and 4 in st.touched and 0 in st.touched
        assert 1 not in st.touched


class TestPruning:
    def test_prune_removes_from_pruned_tree(self, tree):
        st = AlphaBetaState(tree)
        st.prune(4)
        assert st.is_pruned_here(4)
        assert not st.in_pruned_tree(5)
        assert st.in_pruned_tree(2)

    def test_prune_finishes_parent_when_last(self, tree):
        st = AlphaBetaState(tree)
        st.finish_leaf(2)
        st.finish_leaf(3)   # node 1 finished with 1.0
        st.prune(4)         # root's remaining child gone
        assert st.root_value() == 1.0

    def test_prune_finished_node_rejected(self, tree):
        st = AlphaBetaState(tree)
        st.finish_leaf(2)
        st.finish_leaf(3)
        with pytest.raises(ModelViolationError):
            st.prune(1)

    def test_prune_idempotent(self, tree):
        st = AlphaBetaState(tree)
        st.prune(4)
        st.prune(4)  # no error
        assert st.is_pruned_here(4)

    def test_prune_leaf_inside_min(self, tree):
        st = AlphaBetaState(tree)
        st.finish_leaf(2)   # 3.0
        st.prune(3)         # MIN node 1 now finished = 3.0
        assert st.finished_value[1] == 3.0


class TestPruningNumbers:
    def test_initial_pruning_numbers(self, tree):
        st = AlphaBetaState(tree)
        assert st.pruning_number(2) == 0
        assert st.pruning_number(3) == 1
        assert st.pruning_number(5) == 1
        assert st.pruning_number(6) == 2

    def test_finished_siblings_do_not_count(self, tree):
        st = AlphaBetaState(tree)
        st.finish_leaf(2)
        assert st.pruning_number(3) == 0

    def test_pruned_siblings_do_not_count(self, tree):
        st = AlphaBetaState(tree)
        st.prune(1)
        assert st.pruning_number(5) == 0
        assert st.pruning_number(6) == 1
