"""Unit tests for the alpha-beta worst-case construction."""

import pytest

from repro.core.alphabeta import (
    alpha_beta,
    parallel_alpha_beta,
    sequential_alpha_beta,
    sss_star,
)
from repro.trees import exact_value
from repro.trees.generators import alpha_beta_worst_case


class TestNoCutoffs:
    @pytest.mark.parametrize("d,n", [(2, 4), (2, 8), (3, 4), (4, 3)])
    def test_alpha_beta_reads_every_leaf(self, d, n):
        t = alpha_beta_worst_case(d, n)
        assert alpha_beta(t).total_work == d ** n

    @pytest.mark.parametrize("d,n", [(2, 6), (3, 4)])
    def test_pruning_process_agrees(self, d, n):
        t = alpha_beta_worst_case(d, n)
        assert sequential_alpha_beta(t).total_work == d ** n

    def test_children_ordering(self):
        # MAX children ascend, MIN children descend, by construction.
        t = alpha_beta_worst_case(2, 4)
        for node in t.iter_nodes():
            if t.is_leaf(node):
                continue
            vals = [exact_value(t, c) for c in t.children(node)]
            from repro.types import NodeType

            if t.node_type(node) is NodeType.MAX:
                assert vals == sorted(vals)
            else:
                assert vals == sorted(vals, reverse=True)

    def test_values_distinct(self):
        t = alpha_beta_worst_case(2, 6)
        leaves = list(t.leaf_values_array)
        assert len(set(leaves)) == len(leaves)


class TestEveryInstanceSpeedup:
    def test_parallel_still_speeds_up(self):
        t = alpha_beta_worst_case(2, 10)
        s = sequential_alpha_beta(t).num_steps
        p = parallel_alpha_beta(t, 1)
        assert p.value == exact_value(t)
        assert s / p.num_steps > 3.0
        assert p.processors <= 11

    def test_sss_immune_to_the_ordering(self):
        # The no-cutoff ordering is pessimal for *left-to-right*
        # search only; best-first SSS* is insensitive to child order
        # and reads a small fraction of the leaves here — the gap that
        # motivated the alpha-beta vs SSS* comparisons (reference
        # [11]).
        t = alpha_beta_worst_case(2, 6)
        assert sss_star(t).total_work < 2 ** 6 / 2
