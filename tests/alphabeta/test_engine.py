"""Unit tests for the pruning-process engine: bounds, selection, fixpoint."""

import math

import numpy as np
import pytest

from repro.core.alphabeta import (
    AlphaBetaState,
    AlphaBetaWidthPolicy,
    prune_to_fixpoint,
    run_minmax,
    select_unfinished_by_pruning_number,
)
from repro.errors import ModelViolationError
from repro.trees import ExplicitTree, exact_value
from repro.trees.generators import iid_minmax, iid_minmax_integers
from repro.types import NodeType, TreeKind


def reference_bounds(tree, state, node):
    """Alpha/beta bounds straight from the paper's definitions."""
    alpha, beta = -math.inf, math.inf
    for anc in tree.ancestors(node):
        parent = tree.parent(anc)
        if parent is None:
            continue
        for sib in tree.children(parent):
            if sib == anc:
                continue
            if sib in state.pruned or sib not in state.finished_value:
                continue
            val = state.finished_value[sib]
            if tree.node_type(anc) is NodeType.MIN:
                alpha = max(alpha, val)
            else:
                beta = min(beta, val)
    return alpha, beta


def brute_force_selection(tree, state, width):
    out = []
    for leaf in tree.iter_leaves():
        if leaf in state.finished_value:
            continue
        if not state.in_pruned_tree(leaf):
            continue
        if state.pruning_number(leaf) <= width:
            out.append(leaf)
    return out


class TestPruneFixpoint:
    def test_classic_shallow_cutoff(self):
        # MAX(MIN(5, ...), MIN(3, x)): after seeing 5 and 3, x cannot
        # matter (alpha = 5 >= beta = 3 at x).
        tree = ExplicitTree.from_nested(
            [[5.0, 6.0], [3.0, 9.0]], kind=TreeKind.MINMAX
        )
        st = AlphaBetaState(tree)
        st.finish_leaf(2)
        st.finish_leaf(3)   # node 1 = MIN(5,6) = 5
        st.finish_leaf(5)   # first leaf of second MIN = 3
        pruned = prune_to_fixpoint(st)
        assert pruned >= 1
        assert 6 in st.pruned
        assert st.root_value() == 5.0

    def test_deep_cutoff(self):
        # Height-4 binary tree exercising a depth-2 (deep) cutoff: a
        # bound from the root's first subtree prunes inside the second
        # subtree two MIN/MAX alternations deeper.
        t = iid_minmax(2, 4, seed=42)
        st = AlphaBetaState(t)
        # Finish the entire first subtree of the root.
        from repro.trees.base import subtree_leaves

        first, second = t.children(t.root)
        for leaf in subtree_leaves(t, first):
            st.finish_leaf(leaf)
        prune_to_fixpoint(st)
        # Walk the second subtree: pruning there may only use the
        # alpha bound from the root level = val(first).
        alpha = st.finished_value[first]
        for node in list(st.pruned):
            a, b = reference_bounds(t, st, node)
            assert a >= b  # every prune was justified

    def test_fixpoint_idempotent(self):
        t = iid_minmax(2, 5, seed=1)
        st = AlphaBetaState(t)
        for leaf in list(t.iter_leaves())[:8]:
            if leaf not in st.finished_value:
                st.finish_leaf(leaf)
        prune_to_fixpoint(st)
        assert prune_to_fixpoint(st) == 0

    def test_no_pruning_without_evaluations(self):
        t = iid_minmax(2, 4, seed=2)
        st = AlphaBetaState(t)
        assert prune_to_fixpoint(st) == 0

    def test_prunes_justified_by_reference_bounds(self):
        for seed in range(10):
            t = iid_minmax_integers(2, 5, seed=seed, num_values=4)
            st = AlphaBetaState(t)
            rng = np.random.default_rng(seed)
            leaves = list(t.iter_leaves())
            rng.shuffle(leaves)
            for leaf in leaves[:12]:
                if leaf in st.finished_value or not st.in_pruned_tree(leaf):
                    continue
                st.finish_leaf(leaf)
                before = set(st.pruned)
                prune_to_fixpoint(st)
                # Each new prune must satisfy alpha >= beta under the
                # reference definition *at some point*; we check with
                # current (only-tighter) bounds.
                for node in st.pruned - before:
                    a, b = reference_bounds(t, st, node)
                    assert a >= b


class TestSelection:
    @pytest.mark.parametrize("width", [0, 1, 2])
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, width, seed):
        t = iid_minmax(2, 5, seed=seed)
        st = AlphaBetaState(t)
        # Advance a few steps with the engine's own policy first.
        for _ in range(3):
            batch = select_unfinished_by_pruning_number(t, st, width)
            if not batch:
                break
            for leaf in batch:
                st.finish_leaf(leaf)
            prune_to_fixpoint(st)
            if st.is_finished(t.root):
                break
        if not st.is_finished(t.root):
            assert select_unfinished_by_pruning_number(t, st, width) == \
                brute_force_selection(t, st, width)

    def test_empty_after_root_finished(self):
        t = iid_minmax(2, 3, seed=0)
        res = run_minmax(t, AlphaBetaWidthPolicy(1))
        st = AlphaBetaState(t)
        for leaf in t.iter_leaves():
            if st.is_finished(t.root):
                break
            if st.in_pruned_tree(leaf) and not st.is_finished(leaf):
                st.finish_leaf(leaf)
                prune_to_fixpoint(st)
        assert st.is_finished(t.root)
        assert select_unfinished_by_pruning_number(t, st, 3) == []


class TestRunMinmax:
    def test_value_matches_oracle(self):
        for seed in range(8):
            t = iid_minmax(3, 4, seed=seed)
            res = run_minmax(t, AlphaBetaWidthPolicy(1))
            assert res.value == exact_value(t)

    def test_bad_policy_raises(self):
        t = iid_minmax(2, 3, seed=0)
        with pytest.raises(ModelViolationError):
            run_minmax(t, lambda tree, state: [])

    def test_max_steps(self):
        t = iid_minmax(2, 6, seed=0)
        with pytest.raises(ModelViolationError):
            run_minmax(t, AlphaBetaWidthPolicy(0), max_steps=3)

    def test_hook_and_batches(self):
        t = iid_minmax(2, 4, seed=3)
        seen = []
        res = run_minmax(
            t, AlphaBetaWidthPolicy(1), keep_batches=True,
            on_step=lambda st, i, b: seen.append(len(b)),
        )
        assert seen == res.trace.degrees
        assert res.trace.batches is not None

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            AlphaBetaWidthPolicy(-1)
