"""Classical alpha-beta vs minimax vs the pruning process."""

import pytest

from repro.core.alphabeta import (
    alpha_beta,
    alpha_beta_leaf_set,
    minimax,
    sequential_alpha_beta,
)
from repro.trees import ExplicitTree, exact_value
from repro.trees.generators import iid_minmax, iid_minmax_integers
from repro.types import TreeKind


class TestClassicalAlphaBeta:
    def test_knuth_moore_style_example(self):
        # MAX over three MIN children; after the first child yields 6,
        # the second child's second leaf is cut (5 <= 6 cut at MIN),
        # and so on.
        tree = ExplicitTree.from_nested(
            [[6.0, 8.0], [5.0, 9.0], [7.0, 4.0]], kind=TreeKind.MINMAX
        )
        res = alpha_beta(tree)
        assert res.value == 6.0
        # Leaves (preorder ids): 2,3 | 5,6 | 8,9.
        # Reads 2, 3 (MIN=6); 5 causes cutoff (5 <= alpha=6); 8, then 9
        # is needed? MIN(7, ...) could exceed 6, so 9 is read: MIN=4.
        assert res.evaluated == [2, 3, 5, 8, 9]

    def test_cutoff_skips_leaves(self):
        t = iid_minmax(2, 8, seed=0)
        ab = alpha_beta(t)
        mm = minimax(t)
        assert ab.value == mm.value == exact_value(t)
        assert ab.total_work < mm.total_work

    def test_minimax_reads_everything(self):
        t = iid_minmax(2, 6, seed=1)
        assert minimax(t).total_work == t.num_leaves()

    @pytest.mark.parametrize("seed", range(10))
    def test_value_matches_oracle(self, seed):
        t = iid_minmax(3, 4, seed=seed)
        assert alpha_beta(t).value == exact_value(t)

    def test_single_leaf(self):
        t = ExplicitTree([()], {0: 5.0}, kind=TreeKind.MINMAX)
        assert alpha_beta(t).value == 5.0


class TestEquivalenceWithPruningProcess:
    """The paper's Sequential alpha-beta (leftmost unfinished leaf of
    the pruned tree) must evaluate exactly the classical left-to-right
    alpha-beta leaf sequence."""

    @pytest.mark.parametrize("seed", range(20))
    def test_leaf_sequences_identical_continuous(self, seed):
        t = iid_minmax(2 + seed % 2, 3 + seed % 3, seed=seed)
        assert sequential_alpha_beta(t).evaluated == \
            alpha_beta_leaf_set(t)

    @pytest.mark.parametrize("seed", range(20))
    def test_leaf_sequences_identical_with_ties(self, seed):
        t = iid_minmax_integers(2 + seed % 2, 3 + seed % 3, seed=seed,
                                num_values=3)
        assert sequential_alpha_beta(t).evaluated == \
            alpha_beta_leaf_set(t)

    def test_all_equal_leaves(self):
        # Fully tied tree: the pruning rule's non-strict comparison
        # must cut exactly as the classical v >= beta cut does.
        t = ExplicitTree.from_nested(
            [[1.0, 1.0], [1.0, 1.0]], kind=TreeKind.MINMAX
        )
        assert sequential_alpha_beta(t).evaluated == \
            alpha_beta_leaf_set(t)
