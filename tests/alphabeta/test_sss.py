"""Unit tests for SSS*."""

import pytest

from repro.core.alphabeta import alpha_beta, sss_leaf_count, sss_star
from repro.trees import ExplicitTree, exact_value
from repro.trees.generators import iid_boolean, iid_minmax, iid_minmax_integers
from repro.types import TreeKind


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(15))
    def test_value_matches_oracle(self, seed):
        t = iid_minmax(2 + seed % 2, 2 + seed % 4, seed=seed)
        assert sss_star(t).value == exact_value(t)

    @pytest.mark.parametrize("seed", range(8))
    def test_value_with_ties(self, seed):
        t = iid_minmax_integers(2, 5, seed=seed, num_values=3)
        assert sss_star(t).value == exact_value(t)

    def test_single_leaf(self):
        t = ExplicitTree([()], {0: 4.5}, kind=TreeKind.MINMAX)
        res = sss_star(t)
        assert res.value == 4.5
        assert res.total_work == 1

    def test_rejects_boolean_tree(self):
        t = iid_boolean(2, 3, 0.5, seed=0)
        with pytest.raises(ValueError):
            sss_star(t)

    def test_textbook_example(self):
        # MAX(MIN(6,8), MIN(5,9), MIN(7,4)) = 6.
        t = ExplicitTree.from_nested(
            [[6.0, 8.0], [5.0, 9.0], [7.0, 4.0]], kind=TreeKind.MINMAX
        )
        res = sss_star(t)
        assert res.value == 6.0


class TestDominance:
    @pytest.mark.parametrize("seed", range(20))
    def test_never_worse_than_alpha_beta(self, seed):
        # Stockman's dominance theorem (distinct leaf values).
        t = iid_minmax(2, 6, seed=seed)
        assert sss_leaf_count(t) <= alpha_beta(t).total_work

    def test_no_leaf_evaluated_twice(self):
        t = iid_minmax(2, 7, seed=0)
        res = sss_star(t)
        assert len(set(res.evaluated)) == len(res.evaluated)

    def test_work_bounded_by_leaves(self):
        t = iid_minmax(3, 4, seed=1)
        assert sss_leaf_count(t) <= t.num_leaves()

    def test_can_beat_alpha_beta_strictly(self):
        # Best-first order sometimes skips leaves alpha-beta reads.
        wins = sum(
            sss_leaf_count(iid_minmax(2, 7, seed=s))
            < alpha_beta(iid_minmax(2, 7, seed=s)).total_work
            for s in range(10)
        )
        assert wins > 0
