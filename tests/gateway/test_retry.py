"""Unit tests for the global retry token bucket."""

import pytest

from repro.gateway import RetryBudget


def test_starts_full_and_spends_atomically():
    budget = RetryBudget(4, 0.5)
    assert budget.tokens == 4.0
    assert budget.try_spend(3)
    assert budget.tokens == 1.0
    assert not budget.try_spend(2)  # short: no partial spend
    assert budget.tokens == 1.0
    assert budget.spent == 3
    assert budget.exhausted == 1


def test_refill_saturates_at_capacity():
    budget = RetryBudget(2, 0.5)
    assert budget.try_spend(2)
    budget.advance(1)
    assert budget.tokens == 0.5
    assert not budget.try_spend(1)
    budget.advance(1)
    assert budget.try_spend(1)
    budget.advance(100)
    assert budget.tokens == 2.0  # saturated


def test_zero_capacity_never_grants():
    budget = RetryBudget(0, 1.0)
    assert not budget.try_spend(1)
    budget.advance(10)
    assert not budget.try_spend(1)
    assert budget.try_spend(0)  # free spends always succeed


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        RetryBudget(-1, 0.5)
    with pytest.raises(ValueError):
        RetryBudget(1, -0.5)
    budget = RetryBudget(1, 0.5)
    with pytest.raises(ValueError):
        budget.advance(-1)
    with pytest.raises(ValueError):
        budget.try_spend(-1)
