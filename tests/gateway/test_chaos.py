"""Unit tests for the fault-plan-driven shard outage controller."""

import pytest

from repro.faults import FaultPlan, ScheduleEntry
from repro.faults.oracle import InjectedFaultError
from repro.gateway import ShardOutageController


def _crash_plan(seed=7, tick=3, shard=1, duration=2):
    return FaultPlan(seed, schedule=[
        ScheduleEntry("crash", tick=tick, level=shard, duration=duration),
    ])


def test_scheduled_crash_opens_and_closes_the_window():
    ctrl = ShardOutageController(2, _crash_plan())
    ctrl.begin_run()
    for tick in range(6):
        ctrl.begin_tick(tick)
        assert ctrl.is_down(0) is False
        assert ctrl.is_down(1) is (3 <= tick < 5)
    assert ctrl.outages == 1


def test_down_shard_oracle_raises_injected_fault():
    ctrl = ShardOutageController(2, _crash_plan(tick=0, shard=0))
    ctrl.begin_run()
    base_calls = []

    def base(payload):
        base_calls.append(payload)
        return {"value": 1.0, "steps": 1, "work": 1}

    factory = ctrl.oracle_for_shard(base)
    oracle0, oracle1 = factory(0), factory(1)
    ctrl.begin_tick(0)
    with pytest.raises(InjectedFaultError):
        oracle0({"algo": "sequential"})
    assert oracle1({"algo": "sequential"})["value"] == 1.0
    ctrl.begin_tick(2)  # window over (duration 2)
    assert oracle0({"algo": "sequential"})["value"] == 1.0
    assert len(base_calls) == 2


def test_begin_run_resets_state_for_replay():
    ctrl = ShardOutageController(2, _crash_plan(tick=0, shard=0))
    ctrl.begin_run()
    ctrl.begin_tick(0)
    first = (ctrl.down_shards(), ctrl.outages)
    ctrl.begin_run()
    assert ctrl.tick is None
    assert ctrl.down_shards() == []
    ctrl.begin_tick(0)
    assert (ctrl.down_shards(), ctrl.outages) == first


def test_rate_driven_plan_consults_rng_identically_across_runs():
    plan = FaultPlan.with_rate(11, "crash", 0.2, max_faults=4)
    ctrl = ShardOutageController(3, plan)

    def trajectory():
        ctrl.begin_run()
        down = []
        for tick in range(30):
            ctrl.begin_tick(tick)
            down.append(tuple(ctrl.down_shards()))
        return down, ctrl.outages

    assert trajectory() == trajectory()


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        ShardOutageController(0, _crash_plan())
