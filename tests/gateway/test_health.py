"""Unit tests for the shard circuit-breaker state machine."""

import pytest

from repro.gateway import DEGRADED, HEALTHY, PROBING, HealthSupervisor


def test_degradation_schedules_a_probe_after_cooldown():
    sup = HealthSupervisor(2, probe_after=3, probe_interval=5)
    sup.on_degraded(1, tick=10)
    assert sup.state(1) == DEGRADED
    assert sup.due_probes(12) == []  # cooldown not over
    assert sup.due_probes(13) == [1]
    assert sup.state(1) == PROBING


def test_successful_probe_readmits():
    sup = HealthSupervisor(1, probe_after=1, probe_interval=1)
    sup.on_degraded(0, tick=0)
    assert sup.due_probes(1) == [0]
    sup.on_probe_result(0, True, tick=1)
    assert sup.state(0) == HEALTHY
    assert sup.total_readmissions == 1
    assert sup.degraded() == []


def test_failed_probe_backs_off_by_probe_interval():
    sup = HealthSupervisor(1, probe_after=2, probe_interval=4)
    sup.on_degraded(0, tick=0)
    assert sup.due_probes(2) == [0]
    sup.on_probe_result(0, False, tick=2)
    assert sup.state(0) == DEGRADED
    assert sup.due_probes(5) == []  # interval not elapsed
    assert sup.due_probes(6) == [0]
    assert sup.total_probes == 2
    assert sup.total_readmissions == 0


def test_redegradation_while_degraded_is_idempotent():
    sup = HealthSupervisor(1, probe_after=5, probe_interval=5)
    sup.on_degraded(0, tick=0)
    sup.on_degraded(0, tick=3)  # must not push next_probe out
    assert sup.due_probes(5) == [0]


def test_due_probes_returns_ascending_shard_order():
    sup = HealthSupervisor(3, probe_after=1, probe_interval=1)
    sup.on_degraded(2, tick=0)
    sup.on_degraded(0, tick=0)
    assert sup.due_probes(1) == [0, 2]


def test_probe_result_requires_half_open_state():
    sup = HealthSupervisor(1)
    with pytest.raises(ValueError):
        sup.on_probe_result(0, True, tick=0)


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        HealthSupervisor(0)
    with pytest.raises(ValueError):
        HealthSupervisor(1, probe_after=0)
    with pytest.raises(ValueError):
        HealthSupervisor(1, probe_interval=0)
