"""Unit tests for the seeded open-loop load generator and reports."""

import pytest

from repro.gateway import (
    DEFAULT_DEADLINES,
    Gateway,
    GatewayConfig,
    open_loop_arrivals,
    percentile,
    render_report,
    summarize,
)


def _fingerprint(arrivals):
    return [
        (tick, g.request.request_id, g.priority, g.deadline)
        for tick, g in arrivals
    ]


def test_same_seed_same_schedule():
    a = open_loop_arrivals(50, seed=9, rate=4.0)
    b = open_loop_arrivals(50, seed=9, rate=4.0)
    assert _fingerprint(a) == _fingerprint(b)


def test_different_seeds_differ():
    a = open_loop_arrivals(50, seed=9, rate=4.0)
    b = open_loop_arrivals(50, seed=10, rate=4.0)
    assert _fingerprint(a) != _fingerprint(b)


def test_schedule_shape_and_deadlines():
    arrivals = open_loop_arrivals(30, seed=3, rate=5.0)
    assert len(arrivals) == 30
    ticks = [tick for tick, _g in arrivals]
    assert ticks == sorted(ticks)
    for tick, greq in arrivals:
        assert greq.arrival == tick
        assert greq.deadline == tick + DEFAULT_DEADLINES[greq.priority]


def test_custom_mix_must_cover_every_class():
    with pytest.raises(ValueError):
        open_loop_arrivals(
            10, seed=1, rate=2.0,
            priority_weights={"interactive": 1.0},
        )
    with pytest.raises(ValueError):
        open_loop_arrivals(
            10, seed=1, rate=2.0, deadlines={"batch": 10},
        )


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        open_loop_arrivals(0, seed=1, rate=2.0)
    with pytest.raises(ValueError):
        open_loop_arrivals(10, seed=1, rate=0.0)


def test_percentile_nearest_rank():
    assert percentile([], 0.5) == 0.0
    assert percentile([1, 2, 3, 4], 0.0) == 1.0
    assert percentile([1, 2, 3, 4], 0.5) == 3.0
    assert percentile([1, 2, 3, 4], 1.0) == 4.0
    with pytest.raises(ValueError):
        percentile([1], 1.5)


def test_summarize_and_render_agree_with_stats():
    arrivals = open_loop_arrivals(40, seed=2026, rate=8.0)
    with Gateway(GatewayConfig()) as gateway:
        report = gateway.run(arrivals)
    load = summarize(report)
    assert load.requests == report.stats.arrivals == 40
    assert load.completed == report.stats.completed
    assert load.goodput + load.shed_rate == pytest.approx(1.0)
    assert load.p50 <= load.p99 <= load.p999
    text = render_report(load)
    assert "40 arrival(s)" in text
    assert "goodput" in text and "latency ticks" in text
