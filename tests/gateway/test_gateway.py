"""End-to-end gateway tests: determinism, overload, chaos, healing."""

import pytest

from repro.faults import FaultPlan, ScheduleEntry
from repro.gateway import (
    Gateway,
    GatewayConfig,
    GatewayRequest,
    open_loop_arrivals,
    summarize,
)
from repro.serve import EvalRequest, run_algorithm
from repro.telemetry import InMemoryRecorder
from repro.trees.generators import iid_boolean


def _arrivals(n=40, seed=2026, rate=8.0, **kwargs):
    return open_loop_arrivals(n, seed=seed, rate=rate, **kwargs)


def _crash_plan(seed=2026, tick=5, shard=0, duration=12):
    return FaultPlan(seed, schedule=[
        ScheduleEntry("crash", tick=tick, level=shard, duration=duration),
    ])


def _run(config=None, plan=None, arrivals=None, recorder=None):
    with Gateway(
        config or GatewayConfig(), fault_plan=plan, recorder=recorder
    ) as gateway:
        report = gateway.run(arrivals or _arrivals())
    return report


def test_same_seed_runs_are_byte_identical():
    logs = [
        _run(plan=_crash_plan(), arrivals=_arrivals()).response_log
        for _ in range(2)
    ]
    assert logs[0] == logs[1]
    assert logs[0]  # non-empty


def test_every_arrival_is_resolved_exactly_once():
    arrivals = _arrivals(60, rate=20.0)
    report = _run(
        config=GatewayConfig(queue_capacities={
            "interactive": 4, "batch": 6, "bulk": 6,
        }),
        arrivals=arrivals,
    )
    assert len(report.outcomes) == len(arrivals)
    assert sorted(o.request_id for o in report.outcomes) == sorted(
        greq.request.request_id for _t, greq in arrivals
    )
    stats = report.stats
    assert stats.completed + stats.total_rejected == stats.arrivals


def test_completed_answers_match_direct_evaluation():
    arrivals = _arrivals(30)
    report = _run(plan=_crash_plan(), arrivals=arrivals)
    by_id = {g.request.request_id: g.request for _t, g in arrivals}
    checked = 0
    for outcome in report.outcomes:
        if outcome.status != "ok":
            continue
        req = by_id[outcome.request_id]
        value, steps, work = run_algorithm(
            req.algo, req.tree, req.params_dict()
        )
        assert (outcome.value, outcome.steps, outcome.work) == (
            float(value), steps, work
        )
        checked += 1
    assert checked > 0


def test_overload_sheds_with_typed_queue_full():
    report = _run(
        config=GatewayConfig(
            queue_capacities={
                "interactive": 2, "batch": 2, "bulk": 2,
            },
            batch_size=2,
        ),
        arrivals=_arrivals(80, rate=40.0),
    )
    rejected = report.stats.rejected
    assert rejected.get("queue-full", 0) > 0
    assert set(rejected) <= {"queue-full", "deadline", "retry-budget"}
    assert report.stats.completed > 0  # degrades, does not collapse


def test_queued_requests_past_deadline_are_cancelled():
    tree = iid_boolean(2, 3, 0.5, seed=3)
    arrivals = []
    for i in range(12):
        req = EvalRequest.make(i, "sequential", tree)
        arrivals.append((0, GatewayRequest(
            request=req, priority="batch", arrival=0,
            deadline=0 if i else 50,
        )))
    report = _run(
        config=GatewayConfig(batch_size=1, base_service_ticks=4),
        arrivals=arrivals,
    )
    assert report.stats.rejected.get("deadline", 0) > 0
    reasons = {
        o.request_id: o.reason
        for o in report.outcomes if o.status == "rejected"
    }
    assert all(reason == "deadline" for reason in reasons.values())


def test_chaos_crash_probes_and_readmits_the_shard():
    rec = InMemoryRecorder()
    report = _run(
        config=GatewayConfig(probe_after=3, probe_interval=3),
        plan=_crash_plan(duration=12),
        arrivals=_arrivals(50),
        recorder=rec,
    )
    stats = report.stats
    assert stats.outages >= 1
    assert stats.probes >= 1
    assert stats.readmissions >= 1
    readmitted = [
        e for e in rec.events
        if e.kind == "instant" and e.name == "gateway.readmitted"
    ]
    assert len(readmitted) == stats.readmissions
    # The service saw the same recovery.
    assert stats.completed + stats.total_rejected == stats.arrivals


def test_single_shard_outage_consumes_retry_budget_then_sheds():
    tree = iid_boolean(2, 3, 0.5, seed=3)
    arrivals = [
        (0, GatewayRequest(
            request=EvalRequest.make(i, "sequential", tree),
            priority="batch", arrival=0, deadline=200,
        ))
        for i in range(4)
    ]
    plan = FaultPlan(1, schedule=[
        ScheduleEntry("crash", tick=0, level=0, duration=6),
    ])

    def run_with_budget(capacity):
        return _run(
            config=GatewayConfig(
                num_shards=1,
                retry_capacity=capacity,
                retry_refill_per_tick=0.0,
                probe_after=3,
                probe_interval=3,
            ),
            plan=plan,
            arrivals=arrivals,
        )

    starved = run_with_budget(0)
    assert starved.stats.rejected.get("retry-budget", 0) == 4
    assert starved.stats.retried_requests == 0

    funded = run_with_budget(8)
    assert funded.stats.retried_requests == 4
    assert funded.stats.completed == 4
    assert funded.stats.readmissions == 1


def test_priority_classes_shed_independently():
    report = _run(
        config=GatewayConfig(
            queue_capacities={
                "interactive": 64, "batch": 1, "bulk": 1,
            },
        ),
        arrivals=_arrivals(60, rate=30.0),
    )
    shed = [
        o for o in report.outcomes
        if o.status == "rejected" and o.reason == "queue-full"
    ]
    assert shed
    assert all(o.priority in ("batch", "bulk") for o in shed)


def test_run_rejects_decreasing_arrival_ticks():
    tree = iid_boolean(2, 2, 0.5, seed=1)
    greq = GatewayRequest(
        request=EvalRequest.make(0, "sequential", tree),
        priority="batch", arrival=0, deadline=10,
    )
    with Gateway(GatewayConfig()) as gateway:
        with pytest.raises(ValueError):
            gateway.run([(5, greq), (3, greq)])


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        GatewayConfig(batch_size=0)
    with pytest.raises(ValueError):
        GatewayConfig(base_service_ticks=0)
    with pytest.raises(ValueError):
        GatewayConfig(ticks_per_eval=-1)
    with pytest.raises(ValueError):
        GatewayConfig(max_drain_ticks=0)


def test_wallclock_driver_matches_deterministic_log():
    from repro.gateway.aio import run_wallclock

    arrivals = _arrivals(25)
    plan = _crash_plan()
    baseline = _run(plan=plan, arrivals=arrivals)
    with Gateway(GatewayConfig(), fault_plan=_crash_plan()) as gateway:
        paced, elapsed = run_wallclock(
            gateway, arrivals, tick_seconds=0.0002
        )
    assert paced.response_log == baseline.response_log
    assert elapsed > 0.0


def test_wallclock_rejects_nonpositive_tick_seconds():
    from repro.gateway.aio import run_wallclock

    with Gateway(GatewayConfig()) as gateway:
        with pytest.raises(ValueError):
            run_wallclock(gateway, [], tick_seconds=0.0)
