"""``repro gateway`` end-to-end: logs, chaos, verify, wall-clock."""

import json

from repro.__main__ import main


def test_gateway_runs_verifies_and_writes_log(tmp_path, capsys):
    log = tmp_path / "outcomes.jsonl"
    rc = main([
        "gateway", "--num-requests", "40", "--height", "3",
        "--chaos", "--verify", "--log-out", str(log),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "gateway: 40 arrival(s)" in out
    assert "readmission(s)" in out
    assert "verify: all" in out

    lines = log.read_text().splitlines()
    assert len(lines) == 40
    for line in lines:
        record = json.loads(line)
        assert record["status"] in ("ok", "rejected")
        if record["status"] == "ok":
            assert {"key", "algo", "value", "steps", "work"} <= set(record)
        else:
            assert record["reason"] in (
                "queue-full", "deadline", "retry-budget"
            )


def test_gateway_log_identical_across_same_seed_runs(tmp_path):
    logs = []
    for name in ("a", "b"):
        path = tmp_path / f"{name}.jsonl"
        rc = main([
            "gateway", "--num-requests", "40", "--height", "3",
            "--chaos", "--log-out", str(path),
        ])
        assert rc == 0
        logs.append(path.read_bytes())
    assert logs[0] == logs[1]


def test_gateway_overload_sheds_but_stays_up(capsys):
    rc = main([
        "gateway", "--num-requests", "120", "--height", "3",
        "--rate", "40", "--batch-size", "2",
        "--queue-capacity", "4", "--verify",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "queue-full=" in out
    assert "verify: all" in out


def test_gateway_wallclock_matches_deterministic_log(tmp_path, capsys):
    paced = tmp_path / "paced.jsonl"
    simulated = tmp_path / "simulated.jsonl"
    rc = main([
        "gateway", "--num-requests", "25", "--height", "3",
        "--chaos", "--wallclock", "--tick-seconds", "0.0002",
        "--log-out", str(paced),
    ])
    assert rc == 0
    assert "wall-clock:" in capsys.readouterr().out
    rc = main([
        "gateway", "--num-requests", "25", "--height", "3",
        "--chaos", "--log-out", str(simulated),
    ])
    assert rc == 0
    assert paced.read_bytes() == simulated.read_bytes()


def test_gateway_writes_trace(tmp_path):
    trace = tmp_path / "trace.jsonl"
    rc = main([
        "gateway", "--num-requests", "20", "--height", "3",
        "--chaos", "--trace-out", str(trace),
    ])
    assert rc == 0
    lines = [json.loads(l) for l in trace.read_text().splitlines()]
    assert lines[0]["kind"] == "meta"
    names = {r.get("name") for r in lines}
    assert "gateway.queue_depth" in names
    footer = lines[-1]
    assert footer["kind"] == "metrics"
    assert footer["counters"]["gateway.completed"] == 20


def test_gateway_rejects_bad_chaos_shard(capsys):
    rc = main([
        "gateway", "--num-requests", "5", "--shards", "2",
        "--chaos", "--chaos-shard", "7",
    ])
    assert rc == 2
    assert "--chaos-shard" in capsys.readouterr().err
