"""Unit tests for the bounded multi-class admission queues."""

import pytest

from repro.gateway import AdmissionQueue, GatewayRequest
from repro.serve import EvalRequest
from repro.trees import UniformTree


def _greq(request_id, priority="batch", arrival=0, deadline=100):
    req = EvalRequest.make(
        request_id, "sequential", UniformTree(2, 1, [0, 1])
    )
    return GatewayRequest(
        request=req, priority=priority,
        arrival=arrival, deadline=deadline,
    )


def test_offer_admits_until_capacity_then_sheds():
    queue = AdmissionQueue({"batch": 2})
    assert queue.offer(_greq(0)) is None
    assert queue.offer(_greq(1)) is None
    assert queue.offer(_greq(2)) == "queue-full"
    assert queue.depth("batch") == 2


def test_classes_have_independent_capacities():
    queue = AdmissionQueue({"interactive": 1, "batch": 1, "bulk": 1})
    assert queue.offer(_greq(0, "interactive")) is None
    assert queue.offer(_greq(1, "batch")) is None
    assert queue.offer(_greq(2, "interactive")) == "queue-full"
    assert queue.offer(_greq(3, "bulk")) is None
    assert queue.depths() == {
        "interactive": 1, "batch": 1, "bulk": 1,
    }


def test_take_drains_priority_then_fifo():
    queue = AdmissionQueue()
    queue.offer(_greq(0, "bulk"))
    queue.offer(_greq(1, "batch"))
    queue.offer(_greq(2, "interactive"))
    queue.offer(_greq(3, "batch"))
    batch = queue.take(3)
    assert [g.request.request_id for g in batch] == [2, 1, 3]
    assert queue.depth() == 1


def test_take_respects_budget():
    queue = AdmissionQueue()
    for i in range(5):
        queue.offer(_greq(i))
    assert len(queue.take(2)) == 2
    assert queue.depth() == 3


def test_requeue_front_preserves_order_and_skips_capacity():
    queue = AdmissionQueue({"batch": 2})
    queue.offer(_greq(0))
    queue.offer(_greq(1))
    batch = queue.take(2)
    queue.offer(_greq(2))
    queue.offer(_greq(3))  # class at capacity again
    queue.requeue_front(batch)  # exempt from the capacity check
    assert queue.depth("batch") == 4
    assert queue.offer(_greq(4)) == "queue-full"
    drained = queue.take(4)
    assert [g.request.request_id for g in drained] == [0, 1, 2, 3]


def test_expire_removes_deadline_passed_entries():
    queue = AdmissionQueue()
    queue.offer(_greq(0, deadline=5))
    queue.offer(_greq(1, deadline=10))
    queue.offer(_greq(2, "interactive", deadline=3))
    expired = queue.expire(6)
    assert sorted(g.request.request_id for g in expired) == [0, 2]
    assert queue.depth() == 1
    # deadline == now is still servable
    assert queue.expire(10) == []


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        AdmissionQueue({"nope": 4})
    with pytest.raises(ValueError):
        AdmissionQueue({"batch": 0})


def test_request_validation():
    with pytest.raises(ValueError):
        _greq(0, priority="extreme")
    with pytest.raises(ValueError):
        _greq(0, arrival=10, deadline=9)
