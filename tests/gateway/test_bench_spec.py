"""The e26 gateway overload soak spec: registration and gates."""

import io

from repro.bench.registry import get_spec
from repro.bench.runner import failed_gates, run_benchmarks

import repro.bench.specs  # noqa: F401  (registration import)


def test_e26_is_registered_with_the_overload_gates():
    spec = get_spec("e26")
    assert spec.suite == "infra"
    gate_names = {g.name for g in spec.gates}
    assert {
        "deterministic_log", "zero_wrong_answers", "all_resolved",
        "goodput_floor", "overload_shed", "self_healing",
    } <= gate_names
    assert spec.gate_bound("zero_wrong_answers") == 0.0


def test_e26_quick_profile_passes_every_gate():
    doc = run_benchmarks(
        names=["e26"], profile="quick", progress=io.StringIO()
    )
    assert failed_gates(doc) == []
    record = doc["specs"]["e26"]
    metrics = record["metrics"]
    assert metrics["logs_identical"] == 1.0
    assert metrics["wrong_answers"] == 0.0
    assert metrics["all_resolved"] == 1.0
    assert metrics["shed_rate"] > 0.0  # genuinely overloaded
    assert metrics["readmissions"] >= 1.0  # self-healing ran
    assert record["digests"]["response_log"]
