"""Unit tests for Nim and its Sprague-Grundy oracle."""

import pytest

from repro.core.nodeexpansion import n_parallel_solve, n_sequential_solve
from repro.games import Nim, win_loss_tree


class TestRules:
    def test_moves_enumerate_takes(self):
        game = Nim((3,))
        assert game.moves((3,)) == [(0, 1), (0, 2), (0, 3)]

    def test_take_limit(self):
        game = Nim((5,), max_take=2)
        assert game.moves((5,)) == [(0, 1), (0, 2)]

    def test_multi_heap_moves(self):
        game = Nim((1, 2))
        assert game.moves((1, 2)) == [(0, 1), (1, 1), (1, 2)]

    def test_apply(self):
        game = Nim((3, 4))
        assert game.apply((3, 4), (1, 2)) == (3, 2)

    def test_apply_invalid(self):
        game = Nim((3,))
        with pytest.raises(ValueError):
            game.apply((3,), (0, 4))

    def test_apply_above_limit(self):
        game = Nim((5,), max_take=2)
        with pytest.raises(ValueError):
            game.apply((5,), (0, 3))

    def test_empty_heaps_terminal(self):
        game = Nim((2, 2))
        assert game.moves((0, 0)) == []

    def test_bad_heaps(self):
        with pytest.raises(ValueError):
            Nim(())
        with pytest.raises(ValueError):
            Nim((-1,))


class TestGrundy:
    def test_xor_rule(self):
        game = Nim((1, 2, 3))
        assert game.grundy((1, 2, 3)) == 0
        assert game.grundy((1, 2, 4)) == 7

    def test_take_limit_mod_rule(self):
        game = Nim((7,), max_take=3)
        assert game.grundy((7,)) == 7 % 4

    def test_first_player_wins(self):
        assert Nim((1,)).first_player_wins()
        assert not Nim((1, 1)).first_player_wins()


class TestWinLossTrees:
    @pytest.mark.parametrize("heaps,k", [
        ((1,), None), ((2,), None), ((3,), 2), ((4,), 2),
        ((1, 1), None), ((1, 2), None), ((2, 3), None),
        ((1, 2, 3), None), ((2, 2), 1), ((6,), 3),
    ])
    def test_tree_value_matches_grundy(self, heaps, k):
        game = Nim(heaps, max_take=k)
        tree = win_loss_tree(game)
        res = n_sequential_solve(tree)
        assert bool(res.value) == game.first_player_wins()

    def test_parallel_agrees(self):
        game = Nim((2, 3))
        a = n_sequential_solve(win_loss_tree(game)).value
        b = n_parallel_solve(win_loss_tree(game), 1).value
        assert a == b

    def test_terminal_position_is_loss(self):
        game = Nim((0,))
        tree = win_loss_tree(game)
        assert n_sequential_solve(tree).value == 0
