"""Unit tests for SyntheticGame and the game->tree adapters."""

import pytest

from repro.core.nodeexpansion import n_sequential_alpha_beta, n_sequential_solve
from repro.games import Game, SyntheticGame, game_tree, win_loss_tree
from repro.trees import exact_value
from repro.types import Gate, TreeKind


class TestSyntheticGame:
    def test_uniform_branching_and_depth(self):
        g = SyntheticGame(3, 2, seed=0)
        t = game_tree(g)
        assert t.children(0) is not None
        assert len(t.children(0)) == 3
        assert t.height() == 2
        assert t.num_leaves() == 9

    def test_deterministic_values(self):
        a = game_tree(SyntheticGame(2, 4, seed=7))
        b = game_tree(SyntheticGame(2, 4, seed=7))
        assert exact_value(a) == exact_value(b)

    def test_seed_changes_values(self):
        vals = {
            exact_value(game_tree(SyntheticGame(2, 5, seed=s)))
            for s in range(6)
        }
        assert len(vals) > 1

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            SyntheticGame(0, 3)
        with pytest.raises(ValueError):
            SyntheticGame(2, -1)

    def test_alpha_beta_on_synthetic(self):
        g = SyntheticGame(2, 7, seed=1)
        t = game_tree(g)
        assert n_sequential_alpha_beta(t).value == exact_value(t)

    def test_boolean_win_tree(self):
        g = SyntheticGame(2, 6, seed=2)
        t = win_loss_tree(g)
        assert t.kind is TreeKind.BOOLEAN
        assert t.gate(0) is Gate.NAND
        assert n_sequential_solve(t).value in (0, 1)


class TestAdapters:
    def test_game_tree_is_minmax(self):
        t = game_tree(SyntheticGame(2, 3, seed=0))
        assert t.kind is TreeKind.MINMAX

    def test_max_depth_cuts_with_heuristic(self):
        class Counting(Game):
            def initial_position(self):
                return 0

            def moves(self, pos):
                return [0, 1]  # never terminal on its own

            def apply(self, pos, move):
                return pos * 2 + move

            def terminal_value(self, pos):  # pragma: no cover
                return 0.0

            def evaluate(self, pos):
                return float(pos % 5)

        t = game_tree(Counting(), max_depth=3)
        assert t.height() == 3
        assert 0.0 <= exact_value(t) <= 4.0

    def test_no_heuristic_raises(self):
        class NoEval(Game):
            def initial_position(self):
                return 0

            def moves(self, pos):
                return [0]

            def apply(self, pos, move):
                return pos + 1

            def terminal_value(self, pos):  # pragma: no cover
                return 0.0

        t = game_tree(NoEval(), max_depth=1)
        with pytest.raises(NotImplementedError):
            exact_value(t)

    def test_default_normal_play_terminals(self):
        class Trivial(Game):
            def initial_position(self):
                return 0

            def moves(self, pos):
                return []

            def apply(self, pos, move):  # pragma: no cover
                return pos

            def terminal_value(self, pos):
                return -1.0

        t = win_loss_tree(Trivial())
        assert n_sequential_solve(t).value == 0
