"""Unit tests for the tic-tac-toe game."""

import pytest

from repro.core.nodeexpansion import n_sequential_alpha_beta
from repro.games import TicTacToe, game_tree, winner
from repro.trees import exact_value


@pytest.fixture
def game():
    return TicTacToe()


class TestRules:
    def test_initial_position(self, game):
        board, player = game.initial_position()
        assert board == (0,) * 9
        assert player == 1

    def test_moves_are_empty_squares(self, game):
        pos = game.apply(game.initial_position(), 4)
        assert 4 not in game.moves(pos)
        assert len(game.moves(pos)) == 8

    def test_apply_alternates_players(self, game):
        pos = game.initial_position()
        pos = game.apply(pos, 0)
        assert pos[1] == 2
        pos = game.apply(pos, 1)
        assert pos[1] == 1

    def test_apply_occupied_square_rejected(self, game):
        pos = game.apply(game.initial_position(), 0)
        with pytest.raises(ValueError):
            game.apply(pos, 0)

    def test_winner_rows_columns_diagonals(self):
        assert winner((1, 1, 1, 0, 0, 0, 0, 0, 0)) == 1
        assert winner((2, 0, 0, 2, 0, 0, 2, 0, 0)) == 2
        assert winner((1, 0, 0, 0, 1, 0, 0, 0, 1)) == 1
        assert winner((0, 0, 2, 0, 2, 0, 2, 0, 0)) == 2
        assert winner((0,) * 9) == 0

    def test_game_ends_on_win(self, game):
        board = (1, 1, 1, 2, 2, 0, 0, 0, 0)
        assert game.moves((board, 2)) == []
        assert game.terminal_value((board, 2)) == 1.0

    def test_draw_value(self, game):
        board = (1, 2, 1, 1, 2, 2, 2, 1, 1)
        assert winner(board) == 0
        assert game.terminal_value((board, 1)) == 0.0

    def test_pretty_renders(self, game):
        out = TicTacToe.pretty(game.initial_position())
        assert out.count(".") == 9
        assert "X to move" in out


class TestGameTreeValues:
    def test_x_wins_from_double_threat(self, game):
        # X: 0, 4, O: 1 -> X has threats everywhere; X to move wins.
        pos = ((1, 2, 0, 0, 1, 0, 0, 0, 0), 1)
        t = game_tree(game, pos)
        assert n_sequential_alpha_beta(t).value == 1.0

    def test_midgame_draw_value(self, game):
        pos = game.initial_position()
        for mv in (4, 0, 8, 2):  # sensible opening -> draw
            pos = game.apply(pos, mv)
        t = game_tree(game, pos)
        res = n_sequential_alpha_beta(t)
        assert res.value == 0.0
        assert res.value == exact_value(game_tree(game, pos))

    def test_depth_limited_uses_heuristic(self, game):
        t = game_tree(game, max_depth=2)
        v = exact_value(t)
        assert -1.0 <= v <= 1.0

    def test_heuristic_prefers_winning(self, game):
        won = ((1, 1, 1, 2, 2, 0, 0, 0, 0), 2)
        assert game.evaluate(won) == 1.0
