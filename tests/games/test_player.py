"""Unit tests for the move-selection driver."""

import pytest

from repro.errors import ReproError
from repro.games import Nim, TicTacToe
from repro.games.player import (
    GameRecord,
    best_move,
    play_game,
    principal_variation,
)


class TestBestMove:
    def test_x_takes_the_win(self):
        game = TicTacToe()
        # X: 0, 1 on the top row; O elsewhere; X to move wins at 2.
        pos = ((1, 1, 0, 2, 2, 0, 0, 0, 0), 1)
        choice = best_move(game, pos)
        assert choice.move == 2
        assert choice.value == 1.0

    def test_o_finds_a_winning_move(self):
        game = TicTacToe()
        # O to move; both 5 (completing the middle row) and 2
        # (blocking X while creating the 2-4-6 diagonal threat) win.
        pos = ((1, 1, 0, 2, 2, 0, 0, 0, 1), 2)
        choice = best_move(game, pos)
        assert choice.move in (2, 5)
        assert choice.value == -1.0
        assert dict(choice.scores)[5] == -1.0

    def test_scores_cover_all_moves(self):
        game = TicTacToe()
        pos = game.initial_position()
        for mv in (4, 0, 8, 2):
            pos = game.apply(pos, mv)
        choice = best_move(game, pos)
        assert len(choice.scores) == len(game.moves(pos))
        assert choice.search_steps > 0

    def test_parallel_algorithm_agrees(self):
        game = TicTacToe()
        pos = game.initial_position()
        for mv in (4, 0, 8, 2):
            pos = game.apply(pos, mv)
        seq = best_move(game, pos, algorithm="alphabeta")
        par = best_move(game, pos, algorithm="parallel", width=1)
        assert seq.value == par.value
        assert dict(seq.scores) == dict(par.scores)

    def test_terminal_position_rejected(self):
        game = TicTacToe()
        board = (1, 1, 1, 2, 2, 0, 0, 0, 0)
        with pytest.raises(ReproError):
            best_move(game, (board, 2))

    def test_unknown_algorithm_rejected(self):
        game = TicTacToe()
        with pytest.raises(ReproError):
            best_move(game, game.initial_position(), algorithm="mcts")


class TestNimOptimalPlay:
    @pytest.mark.parametrize("heaps", [(1, 2), (2, 2), (3,), (1, 2, 3)])
    def test_self_play_outcome_matches_grundy(self, heaps):
        # Nim values are win/loss for the mover; drive play through
        # the Boolean win/loss analysis instead of minimax values.
        game = Nim(heaps)
        from repro.core.nodeexpansion import n_sequential_solve
        from repro.games import win_loss_tree

        position = heaps
        mover = 1
        while game.moves(position):
            # Pick any move into a losing position if one exists.
            chosen = None
            for move in game.moves(position):
                nxt = game.apply(position, move)
                value = n_sequential_solve(win_loss_tree(game, nxt)).value
                if value == 0:  # opponent loses there
                    chosen = move
                    break
            if chosen is None:
                chosen = game.moves(position)[0]
            position = game.apply(position, chosen)
            mover = 3 - mover
        # The player unable to move (the current mover) loses.
        first_player_lost = mover == 1
        assert first_player_lost != game.first_player_wins()


class TestPlayGame:
    def test_tictactoe_self_play_is_draw(self):
        # Perfect play from the empty board is a draw; cap the search
        # cost by starting two plies in.
        game = TicTacToe()
        pos = game.apply(game.apply(game.initial_position(), 4), 0)
        record = play_game(game, start=pos)
        assert isinstance(record, GameRecord)
        assert record.outcome == 0.0
        assert not game.moves(record.final_position)

    def test_depth_limited_play_finishes(self):
        from repro.games import ConnectK

        game = ConnectK(3, 3, 3)
        record = play_game(game, depth=4, max_plies=9)
        assert len(record.moves) <= 9
        assert record.total_steps > 0


class TestPrincipalVariation:
    def test_pv_reaches_terminal(self):
        game = TicTacToe()
        pos = ((1, 1, 0, 2, 2, 0, 0, 0, 0), 1)
        pv = principal_variation(game, pos)
        assert pv[0] == 2  # the immediate win
        assert len(pv) == 1

    def test_pv_respects_max_plies(self):
        game = TicTacToe()
        pos = game.apply(game.initial_position(), 4)
        pv = principal_variation(game, pos, max_plies=2)
        assert len(pv) <= 2
