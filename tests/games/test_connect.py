"""Unit tests for Connect-k."""

import pytest

from repro.core.nodeexpansion import (
    n_parallel_alpha_beta,
    n_sequential_alpha_beta,
)
from repro.games import ConnectK, game_tree
from repro.trees import exact_value


@pytest.fixture
def game():
    return ConnectK(3, 3, 3)


class TestRules:
    def test_initial_moves_are_columns(self, game):
        assert game.moves(game.initial_position()) == [0, 1, 2]

    def test_gravity_stacks_pieces(self, game):
        pos = game.apply(game.initial_position(), 1)
        pos = game.apply(pos, 1)
        board, player = pos
        assert board[1] == (1, 2)
        assert player == 1

    def test_full_column_not_listed(self, game):
        pos = game.initial_position()
        for _ in range(3):
            pos = game.apply(pos, 0)
        assert 0 not in game.moves(pos)

    def test_full_column_apply_rejected(self, game):
        pos = game.initial_position()
        for _ in range(3):
            pos = game.apply(pos, 0)
        with pytest.raises(ValueError):
            game.apply(pos, 0)

    def test_vertical_win_detected(self, game):
        pos = game.initial_position()
        for mv in (0, 1, 0, 1, 0):  # X stacks column 0
            pos = game.apply(pos, mv)
        assert game.moves(pos) == []
        assert game.terminal_value(pos) == 1.0

    def test_horizontal_win_detected(self, game):
        pos = game.initial_position()
        for mv in (0, 0, 1, 1, 2):  # X bottom row
            pos = game.apply(pos, mv)
        assert game.terminal_value(pos) == 1.0

    def test_diagonal_win_detected(self):
        game = ConnectK(3, 3, 3)
        # X at (0,0), (1,1), (2,2) rising diagonal.
        pos = game.initial_position()
        for mv in (0, 1, 1, 2, 2, 0, 2):
            pos = game.apply(pos, mv)
        assert game.terminal_value(pos) == 1.0

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            ConnectK(0, 3, 3)
        with pytest.raises(ValueError):
            ConnectK(3, 3, 1)

    def test_pretty_renders(self, game):
        pos = game.apply(game.initial_position(), 1)
        out = ConnectK.pretty(pos)
        assert "X" in out and "O to move" in out


class TestSearch:
    def test_full_game_values_agree(self, game):
        t1 = game_tree(game)
        t2 = game_tree(game)
        seq = n_sequential_alpha_beta(t1)
        par = n_parallel_alpha_beta(t2, 1)
        assert seq.value == par.value
        assert seq.value == exact_value(game_tree(game))

    def test_depth_limited_heuristic_in_range(self):
        game = ConnectK(4, 4, 3)
        t = game_tree(game, max_depth=4)
        v = exact_value(t)
        assert -1.0 <= v <= 1.0

    def test_parallel_speedup_on_depth_limited(self):
        game = ConnectK(4, 4, 3)
        seq = n_sequential_alpha_beta(game_tree(game, max_depth=5))
        par = n_parallel_alpha_beta(game_tree(game, max_depth=5), 1)
        assert abs(seq.value - par.value) < 1e-12
        assert par.num_steps < seq.num_steps
