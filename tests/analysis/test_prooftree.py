"""Unit tests for proof-tree extraction."""

import pytest

from repro.analysis import (
    fact1_lower_bound,
    fact2_certificate_size,
    fact2_lower_bound,
    minmax_proof_leaves_gt,
    minmax_proof_leaves_lt,
    proof_tree_leaf_count,
    proof_tree_leaves,
)
from repro.trees import ExplicitTree, exact_value
from repro.trees.generators import (
    forced_value_instance,
    iid_boolean,
    iid_minmax,
)
from repro.types import TreeKind


class TestBooleanProofTrees:
    @pytest.mark.parametrize("seed", range(8))
    def test_leaves_verify_value(self, seed):
        """Fixing only the proof-tree leaves forces the root value."""
        t = iid_boolean(2, 5, 0.5, seed=seed)
        proof = set(proof_tree_leaves(t))
        value = exact_value(t)
        # Flip every non-proof leaf both ways: value must not change.
        import numpy as np

        leaves = t.leaf_values_array.copy()
        rng = np.random.default_rng(seed)
        for flip in range(4):
            mutated = leaves.copy()
            for i in range(len(mutated)):
                node = t.first_leaf_id() + i
                if node not in proof:
                    mutated[i] = rng.integers(0, 2)
            from repro.trees import UniformTree

            t2 = UniformTree(2, 5, mutated)
            assert exact_value(t2) == value

    def test_size_on_uniform_matches_formula(self):
        for d, n in ((2, 6), (3, 4)):
            for value in (0, 1):
                t = forced_value_instance(d, n, value)
                assert len(proof_tree_leaves(t)) == \
                    proof_tree_leaf_count(d, n, value)

    def test_size_at_least_fact1(self):
        for seed in range(5):
            t = iid_boolean(2, 6, 0.5, seed=seed)
            assert len(proof_tree_leaves(t)) >= fact1_lower_bound(2, 6)

    def test_rejects_minmax(self):
        t = iid_minmax(2, 3, seed=0)
        with pytest.raises(ValueError):
            proof_tree_leaves(t)


class TestMinmaxCertificates:
    def test_gt_certificate_structure(self):
        # MAX(MIN(3,1), MIN(4,2)) = 2; val > 1.5 certified via the
        # second child (both of its leaves needed at the MIN).
        t = ExplicitTree.from_nested(
            [[3.0, 1.0], [4.0, 2.0]], kind=TreeKind.MINMAX
        )
        leaves = minmax_proof_leaves_gt(t, 1.5)
        assert set(leaves) == {5, 6}

    def test_lt_certificate_structure(self):
        t = ExplicitTree.from_nested(
            [[3.0, 1.0], [4.0, 2.0]], kind=TreeKind.MINMAX
        )
        # val < 2.5 needs one low leaf per MAX child.
        leaves = minmax_proof_leaves_lt(t, 2.5)
        assert set(leaves) == {3, 6}

    @pytest.mark.parametrize("seed", range(6))
    def test_certificate_sizes(self, seed):
        d, n = 2, 6
        t = iid_minmax(d, n, seed=seed)
        v = exact_value(t)
        eps = 1e-9
        gt = minmax_proof_leaves_gt(t, v - eps)
        lt = minmax_proof_leaves_lt(t, v + eps)
        assert len(gt) >= d ** (n // 2)
        assert len(lt) >= d ** ((n + 1) // 2)

    @pytest.mark.parametrize("seed", range(6))
    def test_fact2_certificate_meets_bound(self, seed):
        d, n = 2, 6
        t = iid_minmax(d, n, seed=seed)
        assert fact2_certificate_size(t) >= fact2_lower_bound(d, n)
