"""Regression artifact: the Proposition 5 counterexample.

Proposition 5 states (without proof) that Parallel alpha-beta of any
width runs at least as fast on the skeleton H~_T as on T itself.  This
pins the concrete counterexample found during the reproduction — a
uniform binary MIN/MAX tree of height 4 — so the finding is permanent
and the mechanism stays documented.

Mechanism on this instance: leaf 0.726 lies outside H~ (sequential
alpha-beta prunes it using the *finished* left subtree's value 0.64 as
an alpha-bound).  Under width-1 parallel order that bound is not yet
available at step 2, so the leaf's MIN-parent stays unfinished, adds
one to the pruning numbers of the leaves the run actually needs, and
delays them by a step: P~(T) = 3 > 2 = P~(H~_T).
"""

import pytest

from repro.analysis import minmax_skeleton_of
from repro.core.alphabeta import (
    parallel_alpha_beta,
    sequential_alpha_beta,
)
from repro.trees import exact_value
from repro.trees.generators import iid_minmax

#: The seed that produced the counterexample (iid_minmax(2, 4, seed)).
COUNTEREXAMPLE_SEED = 501


@pytest.fixture(scope="module")
def instance():
    return iid_minmax(2, 4, seed=COUNTEREXAMPLE_SEED)


class TestCounterexample:
    def test_literal_prop5_fails_here(self, instance):
        skel = minmax_skeleton_of(instance)
        p_t = parallel_alpha_beta(instance, 1).num_steps
        p_h = parallel_alpha_beta(skel, 1).num_steps
        assert p_t > p_h, (
            "the counterexample evaporated — if an engine change made "
            "Prop 5 hold exactly, update DESIGN.md section 6"
        )

    def test_sequential_still_identical(self, instance):
        # The failure is strictly a parallel-order phenomenon:
        # Sequential alpha-beta is step-identical on T and H~.
        skel = minmax_skeleton_of(instance)
        s_t = sequential_alpha_beta(instance)
        s_h = sequential_alpha_beta(skel)
        assert s_t.num_steps == s_h.num_steps

    def test_correctness_unaffected(self, instance):
        truth = exact_value(instance)
        assert parallel_alpha_beta(instance, 1).value == truth
        assert parallel_alpha_beta(
            minmax_skeleton_of(instance), 1
        ).value == truth

    def test_violation_is_small(self, instance):
        # The finding's second half: the gap is a small constant.
        skel = minmax_skeleton_of(instance)
        p_t = parallel_alpha_beta(instance, 1).num_steps
        p_h = parallel_alpha_beta(skel, 1).num_steps
        assert p_t <= 2 * p_h

    def test_wider_widths_on_this_instance(self, instance):
        # Document the width-2 behaviour too (may or may not violate;
        # must stay within the same small constant).
        skel = minmax_skeleton_of(instance)
        for w in (2, 3):
            p_t = parallel_alpha_beta(instance, w).num_steps
            p_h = parallel_alpha_beta(skel, w).num_steps
            assert p_t <= 2 * p_h
