"""Tests for the Proposition 6 base-path instrumentation."""

from collections import Counter

import pytest

from repro.analysis import prop6_bound, skeleton_of
from repro.analysis.codes import trace_expansion_codes
from repro.core.nodeexpansion import n_parallel_solve
from repro.trees.generators import iid_boolean


class TestExpansionCodes:
    def test_one_record_per_step(self):
        t = iid_boolean(2, 6, 0.45, seed=0)
        records = trace_expansion_codes(t, 1)
        assert len(records) == n_parallel_solve(t, 1).num_steps

    def test_paths_end_at_varying_depths(self):
        # Frontier nodes can be internal, so base paths have varying
        # lengths — the structural reason for Prop 6's (n - k) factor.
        t = iid_boolean(2, 6, 0.45, seed=1)
        lengths = {len(r.path) for r in trace_expansion_codes(t, 1)}
        assert len(lengths) > 1

    @pytest.mark.parametrize("seed", range(6))
    def test_base_paths_distinct_on_skeletons(self, seed):
        t = iid_boolean(2, 6, 0.45, seed=seed)
        records = trace_expansion_codes(skeleton_of(t), 1)
        keyed = [(r.path, r.code) for r in records]
        assert len(set(keyed)) == len(keyed)

    @pytest.mark.parametrize("seed", range(6))
    def test_prop6_histogram_bound(self, seed):
        d, n = 2, 7
        t = iid_boolean(d, n, 0.4, seed=seed)
        records = trace_expansion_codes(skeleton_of(t), 1)
        hist = Counter(r.degree for r in records)
        for degree, count in hist.items():
            assert count <= prop6_bound(n, degree - 1, d)

    def test_codes_entries_in_range(self):
        d = 3
        t = iid_boolean(d, 5, 0.4, seed=2)
        for rec in trace_expansion_codes(t, 1):
            assert all(0 <= c <= d - 1 for c in rec.code)

    def test_degree_bounded_by_code_plus_one(self):
        # In the node-expansion model the degree can exceed
        # 1 + #nonzero for short base paths (deeper searches run in
        # subtrees the code doesn't see), but it is always at least 1.
        t = iid_boolean(2, 6, 0.45, seed=3)
        for rec in trace_expansion_codes(t, 1):
            assert rec.degree >= 1
