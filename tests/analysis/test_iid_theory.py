"""Unit tests for the i.i.d. expectation theory."""

import numpy as np
import pytest

from repro.analysis import (
    empirical_growth_factor,
    pearl_branching_factor,
    pearl_xi,
    solve_expected_cost,
)
from repro.core import sequential_solve
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias
from repro.types import GOLDEN_BIAS


class TestSolveExpectation:
    def test_height_zero_costs_one(self):
        exp = solve_expected_cost(2, 0, 0.3)
        assert exp.expected_cost == 1.0

    def test_deterministic_all_ones(self):
        # p = 1: a 1-valued level costs one child, a 0-valued level
        # costs all d children -> cost = d^floor(n/2); matches the
        # measured cost on the all-ones instance exactly.
        from repro.core import sequential_solve
        from repro.trees.generators import all_ones

        for n in (2, 3, 4, 5, 6):
            exp = solve_expected_cost(2, n, 1.0)
            assert exp.expected_cost == 2 ** (n // 2)
            assert exp.expected_cost == \
                sequential_solve(all_ones(2, n)).total_work

    def test_level_probabilities_follow_nor_map(self):
        p = 0.3
        exp = solve_expected_cost(2, 5, p)
        q = p
        for level_q in exp.level_one_probs:
            assert level_q == pytest.approx(q)
            q = (1 - q) ** 2

    def test_invariant_bias_keeps_probability(self):
        p = level_invariant_bias(3)
        exp = solve_expected_cost(3, 6, p)
        assert all(
            q == pytest.approx(p, abs=1e-9)
            for q in exp.level_one_probs
        )

    def test_bad_bias(self):
        with pytest.raises(ValueError):
            solve_expected_cost(2, 3, 1.5)

    @pytest.mark.parametrize("d,n", [(2, 8), (2, 10), (3, 5)])
    def test_matches_monte_carlo(self, d, n):
        p = level_invariant_bias(d)
        theory = solve_expected_cost(d, n, p).expected_cost
        measured = np.mean([
            sequential_solve(iid_boolean(d, n, p, seed=s)).total_work
            for s in range(60)
        ])
        assert measured == pytest.approx(theory, rel=0.2)


class TestPearl:
    def test_xi_is_root(self):
        for d in (2, 3, 5):
            xi = pearl_xi(d)
            assert xi ** d + xi - 1 == pytest.approx(0.0, abs=1e-9)

    def test_xi2_is_golden_conjugate(self):
        assert pearl_xi(2) == pytest.approx(GOLDEN_BIAS)

    def test_branching_factor_between_sqrt_and_d(self):
        for d in (2, 3, 4, 8):
            bf = pearl_branching_factor(d)
            assert np.sqrt(d) < bf < d

    def test_bad_branching(self):
        with pytest.raises(ValueError):
            pearl_xi(0)


class TestGrowthFit:
    def test_exact_exponential(self):
        costs = [(n, 3.0 * 1.7 ** n) for n in (4, 6, 8, 10)]
        assert empirical_growth_factor(costs) == pytest.approx(1.7)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            empirical_growth_factor([(4, 10.0)])
