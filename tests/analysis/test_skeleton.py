"""Unit tests for skeleton construction (Section 3)."""

import pytest

from repro.analysis import minmax_skeleton_of, skeleton_of
from repro.core import parallel_solve, sequential_solve
from repro.core.alphabeta import alpha_beta_leaf_set, sequential_alpha_beta
from repro.trees import exact_value
from repro.trees.generators import iid_boolean, iid_minmax


class TestBooleanSkeleton:
    @pytest.mark.parametrize("seed", range(8))
    def test_sequential_identical_on_skeleton(self, seed):
        t = iid_boolean(2, 7, 0.45, seed=seed)
        h = skeleton_of(t)
        st, sh = sequential_solve(t), sequential_solve(h)
        assert st.value == sh.value
        assert st.num_steps == sh.num_steps

    def test_skeleton_leaf_count_is_S(self):
        t = iid_boolean(3, 5, 0.35, seed=1)
        h = skeleton_of(t)
        assert h.num_leaves() == sequential_solve(t).num_steps

    def test_skeleton_value_matches(self):
        t = iid_boolean(2, 8, 0.5, seed=2)
        assert exact_value(skeleton_of(t)) == exact_value(t)

    def test_left_sibling_closure(self):
        # The paper: a node of H_T has the same left-siblings in T and
        # H_T.  Since sequential search enters children left to right,
        # every left-sibling of a kept node is kept; so in H_T each
        # internal node's children form a prefix-closed selection,
        # i.e. the arities never "skip" a left child.  We verify via
        # degrees: each H node keeps a prefix of its T children.
        t = iid_boolean(3, 5, 0.4, seed=3)
        h = skeleton_of(t)
        # Walk T and H in parallel.
        pairs = [(t.root, h.root)]
        while pairs:
            tn, hn = pairs.pop()
            if h.is_leaf(hn):
                assert t.is_leaf(tn)
                continue
            t_kids = t.children(tn)
            h_kids = h.children(hn)
            assert len(h_kids) <= len(t_kids)
            # kept children correspond to the leftmost T children
            pairs.extend(zip(t_kids[:len(h_kids)], h_kids))

    @pytest.mark.parametrize("w", [1, 2, 3])
    def test_prop2_monotonicity(self, w):
        for seed in range(6):
            t = iid_boolean(2, 7, 0.4, seed=seed)
            h = skeleton_of(t)
            assert parallel_solve(t, w).num_steps <= \
                parallel_solve(h, w).num_steps

    def test_skeleton_idempotent(self):
        t = iid_boolean(2, 6, 0.5, seed=4)
        h = skeleton_of(t)
        hh = skeleton_of(h)
        assert hh.num_nodes() == h.num_nodes()

    def test_rejects_minmax(self):
        t = iid_minmax(2, 4, seed=0)
        with pytest.raises(ValueError):
            skeleton_of(t)


class TestMinmaxSkeleton:
    @pytest.mark.parametrize("seed", range(8))
    def test_sequential_alpha_beta_identical(self, seed):
        t = iid_minmax(2, 6, seed=seed)
        h = minmax_skeleton_of(t)
        st, sh = sequential_alpha_beta(t), sequential_alpha_beta(h)
        assert st.value == sh.value
        assert st.num_steps == sh.num_steps

    def test_leaf_count_matches_alpha_beta(self):
        t = iid_minmax(3, 4, seed=1)
        h = minmax_skeleton_of(t)
        assert h.num_leaves() == len(alpha_beta_leaf_set(t))

    def test_value_preserved(self):
        t = iid_minmax(2, 7, seed=2)
        assert exact_value(minmax_skeleton_of(t)) == exact_value(t)

    def test_rejects_boolean(self):
        t = iid_boolean(2, 4, 0.5, seed=0)
        with pytest.raises(ValueError):
            minmax_skeleton_of(t)

    def test_prop5_relaxed_bounded_ratio(self):
        # REPRODUCTION FINDING: the literal Prop 5 inequality can fail;
        # the ratio stays within a small constant (here <= 2).
        from repro.core.alphabeta import parallel_alpha_beta

        for seed in range(10):
            t = iid_minmax(2, 6, seed=seed)
            h = minmax_skeleton_of(t)
            pt = parallel_alpha_beta(t, 1).num_steps
            ph = parallel_alpha_beta(h, 1).num_steps
            assert pt <= 2 * ph
