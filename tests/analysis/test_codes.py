"""Unit tests for base-path codes (Proposition 3's counting argument)."""

import pytest

from repro.analysis import (
    codes_lex_decreasing,
    degree_matches_code,
    prop3_bound,
    skeleton_of,
    trace_codes,
)
from repro.trees.generators import iid_boolean, sequential_worst_case


class TestTraceCodes:
    def test_one_record_per_step(self):
        from repro.core import parallel_solve

        t = iid_boolean(2, 6, 0.5, seed=0)
        records = trace_codes(t, 1)
        assert len(records) == parallel_solve(t, 1).num_steps

    def test_base_leaf_is_leftmost_selected(self):
        t = iid_boolean(2, 5, 0.4, seed=1)
        for rec in trace_codes(t, 1):
            assert rec.path[-1] == rec.base_leaf
            assert rec.path[0] == t.root

    def test_code_entries_bounded_by_siblings(self):
        d = 3
        t = iid_boolean(d, 4, 0.4, seed=2)
        for rec in trace_codes(t, 1):
            assert all(0 <= c <= d - 1 for c in rec.code)

    @pytest.mark.parametrize("seed", range(8))
    def test_lex_decreasing_on_skeletons(self, seed):
        t = iid_boolean(2, 7, 0.45, seed=seed)
        records = trace_codes(skeleton_of(t), 1)
        assert codes_lex_decreasing(records)

    @pytest.mark.parametrize("seed", range(8))
    def test_codes_distinct_on_skeletons(self, seed):
        t = iid_boolean(2, 7, 0.45, seed=seed)
        records = trace_codes(skeleton_of(t), 1)
        codes = [r.code for r in records]
        assert len(set(codes)) == len(codes)

    @pytest.mark.parametrize("seed", range(8))
    def test_degree_encoding_on_skeletons(self, seed):
        t = iid_boolean(3, 5, 0.4, seed=seed)
        records = trace_codes(skeleton_of(t), 1)
        assert degree_matches_code(records)

    def test_prop3_histogram_on_worst_case(self):
        d, n = 2, 9
        t = sequential_worst_case(d, n)
        # Worst case tree is its own skeleton (every leaf evaluated).
        records = trace_codes(t, 1)
        from collections import Counter

        hist = Counter(r.degree for r in records)
        for degree, count in hist.items():
            assert count <= prop3_bound(n, degree - 1, d)

    def test_base_paths_distinct(self):
        t = iid_boolean(2, 6, 0.5, seed=3)
        records = trace_codes(skeleton_of(t), 1)
        paths = [r.path for r in records]
        assert len(set(paths)) == len(paths)
