"""Unit tests for the combinatorial bounds and constants."""

import math

import pytest

from repro.analysis import (
    fact1_lower_bound,
    fact2_lower_bound,
    lemma1_k1,
    lemma2_k2,
    proof_tree_leaf_count,
    prop3_bound,
    prop4_k0,
    prop4_step_upper_bound,
    prop6_bound,
    x0_threshold,
)


class TestFacts:
    @pytest.mark.parametrize("d,n,expected", [
        (2, 4, 4), (2, 5, 4), (2, 6, 8), (3, 4, 9), (5, 3, 5),
    ])
    def test_fact1_values(self, d, n, expected):
        assert fact1_lower_bound(d, n) == expected

    @pytest.mark.parametrize("d,n,expected", [
        (2, 2, 2 + 2 - 1), (2, 3, 2 + 4 - 1), (3, 4, 9 + 9 - 1),
        (2, 5, 4 + 8 - 1),
    ])
    def test_fact2_values(self, d, n, expected):
        assert fact2_lower_bound(d, n) == expected

    def test_fact2_exceeds_fact1(self):
        for d in (2, 3, 4):
            for n in range(1, 12):
                assert fact2_lower_bound(d, n) > fact1_lower_bound(d, n)

    @pytest.mark.parametrize("d,n,value,expected", [
        (2, 4, 0, 4), (2, 4, 1, 4), (2, 5, 0, 4), (2, 5, 1, 8),
        (3, 3, 1, 9), (3, 3, 0, 3),
    ])
    def test_proof_tree_leaf_count(self, d, n, value, expected):
        assert proof_tree_leaf_count(d, n, value) == expected

    def test_proof_tree_bad_value(self):
        with pytest.raises(ValueError):
            proof_tree_leaf_count(2, 3, 2)

    def test_fact1_is_min_of_proof_trees(self):
        for d in (2, 3):
            for n in range(1, 10):
                assert fact1_lower_bound(d, n) == min(
                    proof_tree_leaf_count(d, n, 0),
                    proof_tree_leaf_count(d, n, 1),
                )


class TestPropositionBounds:
    def test_prop3_explicit(self):
        assert prop3_bound(10, 0, 2) == 1
        assert prop3_bound(10, 2, 2) == math.comb(10, 2)
        assert prop3_bound(8, 3, 3) == math.comb(8, 3) * 2 ** 3

    def test_prop3_out_of_range(self):
        assert prop3_bound(5, -1, 2) == 0
        assert prop3_bound(5, 6, 2) == 0

    def test_prop6_at_least_prop3(self):
        for n in (6, 10):
            for k in range(n + 1):
                assert prop6_bound(n, k, 2) >= prop3_bound(n, k, 2)

    def test_prop6_summation(self):
        # Exact summation for k = 0: sum_m 1 = n + 1 base paths.
        assert prop6_bound(7, 0, 2) == 8

    def test_prop4_k0_monotone_in_work(self):
        assert prop4_k0(12, 2, 10) <= prop4_k0(12, 2, 10_000)

    def test_prop4_upper_bound_at_least_ideal(self):
        # With work S the parallel time cannot be below S / (n+1); the
        # bound must respect that.
        n, d, S = 12, 2, 5000
        bound = prop4_step_upper_bound(n, d, S)
        assert bound >= S // (n + 1)
        assert bound <= S  # and never worse than sequential


class TestLemmas:
    def test_k2_at_most_k1_style_relation(self):
        # Lemma 2's proof gives k2 >= k1 for n >= n0; check at large n.
        for d in (2, 3):
            assert lemma2_k2(400, d) >= lemma1_k1(400, d)

    def test_k1_definition(self):
        n, d = 16, 2
        k1 = lemma1_k1(n, d)
        assert math.comb(n, k1) * d ** k1 <= d ** (n // 2)
        assert math.comb(n, k1 + 1) * d ** (k1 + 1) > d ** (n // 2)

    def test_k2_definition(self):
        n, d = 16, 2
        k2 = lemma2_k2(n, d)
        total = sum(
            (i + 1) * math.comb(n, i) * (d - 1) ** i
            for i in range(k2 + 1)
        )
        assert total <= d ** (n // 2)

    def test_linear_growth(self):
        for d in (2, 3):
            assert lemma1_k1(320, d) >= 2 * lemma1_k1(80, d) * 0.9
            assert lemma2_k2(320, d) >= 2 * lemma2_k2(80, d) * 0.9


class TestX0:
    @pytest.mark.parametrize("d", [2, 3, 4, 8])
    def test_x0_is_threshold(self, d):
        x0 = x0_threshold(d)
        just_above = x0 * 1.01
        just_below = x0 * 0.99
        assert (just_above + 1) ** 2 * (d - 1) ** just_above \
            <= d ** just_above * 1.01
        assert (just_below + 1) ** 2 * (d - 1) ** just_below \
            > d ** just_below * 0.99

    def test_x0_grows_with_d(self):
        assert x0_threshold(2) < x0_threshold(3) < x0_threshold(6)

    def test_x0_undefined_below_2(self):
        with pytest.raises(ValueError):
            x0_threshold(1)
