"""Unit tests for speed-up measurement helpers."""

import pytest

from repro.analysis import (
    SpeedupSample,
    fit_speedup_linearity,
    mean_samples,
    measure_speedup,
)
from repro.core import parallel_solve, sequential_solve
from repro.trees.generators import iid_boolean


def sample(height, seq, par, work=None, procs=None):
    return SpeedupSample(
        height=height,
        sequential_steps=seq,
        parallel_steps=par,
        parallel_work=work if work is not None else seq,
        processors=procs if procs is not None else height + 1,
    )


class TestSpeedupSample:
    def test_derived_quantities(self):
        s = sample(9, 100, 20)
        assert s.speedup == 5.0
        assert s.normalized_speedup == 0.5
        assert s.work_ratio == 1.0


class TestMeasure:
    def test_measure_roundtrip(self):
        t = iid_boolean(2, 8, 0.5, seed=0)
        s = measure_speedup(
            t, sequential_solve, lambda tree: parallel_solve(tree, 1)
        )
        assert s.height == 8
        assert s.sequential_steps >= s.parallel_steps
        assert s.processors <= 9

    def test_disagreeing_algorithms_raise(self):
        t = iid_boolean(2, 4, 0.5, seed=1)

        def wrong(tree):
            res = sequential_solve(tree)
            res.value = 1 - res.value
            return res

        with pytest.raises(AssertionError):
            measure_speedup(t, sequential_solve, wrong)


class TestFit:
    def test_perfect_line(self):
        samples = [sample(n, 10 * (n + 1), 10) for n in range(5, 15)]
        fit = fit_speedup_linearity(samples)
        assert fit.slope == pytest.approx(1.0)
        assert fit.intercept == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_flat_line(self):
        samples = [sample(n, 50, 10) for n in range(5, 15)]
        fit = fit_speedup_linearity(samples)
        assert fit.slope == pytest.approx(0.0, abs=1e-9)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_speedup_linearity([sample(5, 10, 2)])


class TestMean:
    def test_mean_same_height(self):
        a, b = sample(7, 100, 20), sample(7, 200, 40)
        m = mean_samples([a, b])
        assert m.sequential_steps == 150
        assert m.parallel_steps == 30

    def test_mixed_heights_rejected(self):
        with pytest.raises(ValueError):
            mean_samples([sample(7, 10, 2), sample(8, 10, 2)])
