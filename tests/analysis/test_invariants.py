"""Unit tests for the Theorem 2 invariant checker."""

import pytest

from repro.analysis import pruned_tree_value, theorem2_holds
from repro.core.alphabeta import AlphaBetaState, prune_to_fixpoint
from repro.trees import ExplicitTree, exact_value
from repro.trees.generators import iid_minmax
from repro.types import TreeKind


@pytest.fixture
def tree():
    return ExplicitTree.from_nested(
        [[5.0, 6.0], [3.0, 9.0]], kind=TreeKind.MINMAX
    )


class TestPrunedTreeValue:
    def test_unpruned_equals_exact(self, tree):
        st = AlphaBetaState(tree)
        assert pruned_tree_value(st) == exact_value(tree)

    def test_after_justified_prune(self, tree):
        st = AlphaBetaState(tree)
        st.finish_leaf(2)
        st.finish_leaf(3)
        st.finish_leaf(5)
        prune_to_fixpoint(st)
        assert 6 in st.pruned
        assert pruned_tree_value(st) == exact_value(tree)
        assert theorem2_holds(st, exact_value(tree))

    def test_detects_wrongful_prune(self, tree):
        st = AlphaBetaState(tree)
        # Pruning the best subtree changes the pruned-tree value.
        st.prune(1)  # MIN(5,6) = 5, the maximiser
        assert pruned_tree_value(st) == 3.0
        assert not theorem2_holds(st, exact_value(tree))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_trees_unpruned(self, seed):
        t = iid_minmax(2, 6, seed=seed)
        st = AlphaBetaState(t)
        assert pruned_tree_value(st) == exact_value(t)
