"""Unit tests for schedule statistics."""

import pytest

from repro.analysis import schedule_stats, speedup_ceilings
from repro.core import parallel_solve, sequential_solve
from repro.models import ExecutionTrace
from repro.trees.generators import iid_boolean


class TestScheduleStats:
    def test_hand_trace(self):
        tr = ExecutionTrace()
        tr.record([1, 2])   # degree 2
        tr.record([3, 4])   # degree 2
        tr.record([5])      # degree 1
        st = schedule_stats(tr)
        assert st.steps == 3
        assert st.work == 5
        assert st.processors == 2
        assert st.efficiency == pytest.approx(5 / 6)
        assert st.mean_degree == pytest.approx(5 / 3)
        assert st.step_share_by_degree == {
            1: pytest.approx(1 / 3), 2: pytest.approx(2 / 3)
        }
        assert st.work_share_by_degree[2] == pytest.approx(4 / 5)

    def test_shares_sum_to_one(self):
        t = iid_boolean(2, 9, 0.4, seed=1)
        st = schedule_stats(parallel_solve(t, 1).trace)
        assert sum(st.step_share_by_degree.values()) == pytest.approx(1)
        assert sum(st.work_share_by_degree.values()) == pytest.approx(1)
        assert 0 < st.efficiency <= 1

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            schedule_stats(ExecutionTrace())

    def test_sequential_trace_is_fully_efficient(self):
        t = iid_boolean(2, 6, 0.5, seed=2)
        st = schedule_stats(sequential_solve(t).trace)
        assert st.efficiency == 1.0
        assert st.processors == 1


class TestSpeedupCeilings:
    def test_ceilings_ordering(self):
        t = iid_boolean(2, 10, 0.4, seed=3)
        par = parallel_solve(t, 1)
        c = speedup_ceilings(t, par)
        # Achieved speed-up respects both ceilings.
        assert c.speedup <= c.span_ceiling + 1e-9
        assert c.speedup <= c.processors + 1e-9
        assert 0 < c.span_fraction <= 1
        assert 0 < c.processor_fraction <= 1

    def test_accepts_precomputed_sequential(self):
        t = iid_boolean(2, 8, 0.4, seed=4)
        seq = sequential_solve(t)
        par = parallel_solve(t, 2)
        c = speedup_ceilings(t, par, sequential_result=seq)
        assert c.sequential_steps == seq.num_steps
