"""End-to-end instrumentation: engines, machine, oracle runtime.

Two properties per surface: (1) the recorded data is consistent with
the run's own accounting, and (2) attaching a recorder changes nothing
about the result (the differential suite widens this over random
instances; here it is pinned on fixed seeds).
"""

from concurrent.futures import ThreadPoolExecutor

from repro.core import parallel_solve, sequential_solve, team_solve
from repro.core.alphabeta import parallel_alpha_beta
from repro.core.nodeexpansion import n_parallel_solve
from repro.models.executors import OracleRuntime
from repro.simulator import simulate
from repro.simulator.machine import Machine
from repro.telemetry import InMemoryRecorder
from repro.trees.generators import iid_boolean, iid_minmax
from repro.trees.generators.iid import level_invariant_bias


def _tree(height=5, seed=11):
    return iid_boolean(2, height, level_invariant_bias(2), seed=seed)


class TestSolveInstrumentation:
    def test_step_spans_match_the_trace(self):
        rec = InMemoryRecorder()
        result = parallel_solve(_tree(), 2, recorder=rec)
        spans = rec.spans(track="solve")
        assert len(spans) == result.num_steps
        assert [dict(s.attrs)["degree"] for s in spans] \
            == result.trace.degrees
        assert rec.clock == result.num_steps

    def test_counters_match_the_accounting(self):
        rec = InMemoryRecorder()
        result = parallel_solve(_tree(), 2, recorder=rec)
        counters = rec.metrics.counters
        assert counters["solve.leaves_evaluated"] == result.total_work
        assert counters["solve.steps"] == result.num_steps
        assert rec.metrics.gauges["solve.processors"] == result.processors

    def test_frontier_metrics_recorded_by_incremental_backend(self):
        rec = InMemoryRecorder()
        parallel_solve(_tree(), 2, backend="incremental", recorder=rec)
        assert rec.metrics.counters["frontier.settled"] > 0
        assert "frontier.settle_cascade" in rec.metrics.histograms

    def test_team_and_sequential_also_record(self):
        rec = InMemoryRecorder()
        team = team_solve(_tree(), 4, recorder=rec)
        assert len(rec.spans(track="solve")) == team.num_steps
        rec2 = InMemoryRecorder()
        seq = sequential_solve(_tree(), recorder=rec2)
        assert len(rec2.spans(track="sequential")) == seq.num_steps

    def test_recorder_does_not_change_the_run(self):
        bare = parallel_solve(_tree(), 2, keep_batches=True)
        traced = parallel_solve(
            _tree(), 2, keep_batches=True, recorder=InMemoryRecorder()
        )
        assert bare.value == traced.value
        assert bare.trace.degrees == traced.trace.degrees
        assert bare.trace.batches == traced.trace.batches


class TestAlphaBetaAndNodeExpansion:
    def test_alphabeta_spans_carry_pruning(self):
        rec = InMemoryRecorder()
        mtree = iid_minmax(2, 5, seed=3)
        result = parallel_alpha_beta(mtree, 2, recorder=rec)
        spans = rec.spans(track="alphabeta")
        assert len(spans) == result.num_steps
        assert all("pruned" in dict(s.attrs) for s in spans)
        assert rec.metrics.counters["alphabeta.leaves_evaluated"] \
            == result.total_work

    def test_nodeexpansion_records_expansions(self):
        rec = InMemoryRecorder()
        result = n_parallel_solve(_tree(), 2, recorder=rec)
        assert len(rec.spans(track="expansion")) == result.num_steps
        assert rec.metrics.counters["expansion.nodes_expanded"] \
            == result.total_work


class TestMachineInstrumentation:
    def test_one_level_track_with_busy_idle_spans_tiling_the_run(self):
        tree = _tree(height=6, seed=2026)
        rec = InMemoryRecorder()
        result = simulate(tree, recorder=rec)
        for level in range(7):  # height 6 -> levels 0..6
            spans = rec.spans(track=f"level-{level}")
            assert spans, f"level {level} has no spans"
            # Ticks are numbered from 1; the final delivery-only tick
            # (where the root value arrives) does no work phase.
            assert spans[0].start == 1
            assert spans[-1].end == result.ticks
            assert {s.name for s in spans} <= {"busy", "idle"}
            for prev, cur in zip(spans, spans[1:]):
                assert prev.end == cur.start

    def test_counters_match_the_simulation_result(self):
        tree = _tree(height=5, seed=9)
        rec = InMemoryRecorder()
        result = simulate(tree, recorder=rec)
        counters = rec.metrics.counters
        assert counters["machine.ticks"] == result.ticks
        assert counters["machine.expansions"] == result.expansions
        assert counters["machine.messages"] == result.messages
        per_kind = sum(
            v for k, v in counters.items() if k.startswith("machine.msg.")
        )
        assert per_kind == result.messages

    def test_degree_time_series_matches_degree_by_tick(self):
        tree = _tree(height=4, seed=5)
        rec = InMemoryRecorder()
        result = simulate(tree, recorder=rec)
        samples = [
            e for e in rec.events
            if e.kind == "counter" and e.name == "machine.degree"
        ]
        # The final tick only delivers the root value (no work phase
        # runs, so no sample); every worked tick is sampled in order.
        assert [e.value for e in samples] == [
            float(d) for d in result.degree_by_tick[:-1]
        ]
        assert result.degree_by_tick[-1] == 0

    def test_busy_ticks_gauges_bounded_by_run_length(self):
        tree = _tree(height=4, seed=5)
        rec = InMemoryRecorder()
        result = simulate(tree, recorder=rec)
        busy = {
            k: v for k, v in rec.metrics.gauges.items()
            if k.startswith("machine.level") and k.endswith("busy_ticks")
        }
        assert len(busy) == 5
        assert all(0 <= v <= result.ticks for v in busy.values())
        assert busy["machine.level0.busy_ticks"] > 0

    def test_recorder_does_not_change_the_simulation(self):
        tree = _tree(height=6, seed=2026)
        bare = simulate(tree)
        traced = simulate(tree, recorder=InMemoryRecorder())
        assert (bare.value, bare.ticks, bare.expansions, bare.messages) \
            == (traced.value, traced.ticks, traced.expansions,
                traced.messages)
        assert bare.degree_by_tick == traced.degree_by_tick

    def test_physical_mode_also_records_all_levels(self):
        tree = _tree(height=5, seed=1)
        rec = InMemoryRecorder()
        result = simulate(tree, physical_processors=2, recorder=rec)
        for level in range(6):
            spans = rec.spans(track=f"level-{level}")
            assert spans and spans[-1].end == result.ticks

    def test_faulty_run_records_reissue_events(self):
        from repro.faults import FaultPlan

        tree = iid_boolean(2, 5, 0.45, seed=0)
        # A crash-heavy plan reliably exercises the recovery path.
        plan = FaultPlan.with_rate(0, "crash", 0.2, max_faults=16)
        rec = InMemoryRecorder()
        result = simulate(tree, fault_plan=plan, recorder=rec)
        assert result.fault_stats is not None
        if result.fault_stats.reissues:
            reissues = [
                e for e in rec.events
                if e.kind == "instant" and e.name == "reissue"
            ]
            assert len(reissues) == result.fault_stats.reissues
        assert rec.events[-1].name == "fault_stats"


def _square(x):
    return x * x


class TestOracleRuntimeInstrumentation:
    def test_chunk_histogram_and_batch_counters(self):
        rec = InMemoryRecorder()
        rt = OracleRuntime(
            _square, chunk_size=3,
            executor_factory=lambda: ThreadPoolExecutor(max_workers=2),
            recorder=rec,
        )
        with rt:
            out = rt.evaluate(list(range(10)))
        assert out == [x * x for x in range(10)]
        assert rec.metrics.counters["oracle.batches"] == 1
        assert rec.metrics.counters["oracle.units"] == 10
        chunks = rec.metrics.histograms["oracle.chunk_size"]
        assert sorted(chunks) == [1.0, 3.0, 3.0, 3.0]

    def test_wallclock_opt_in_times_chunks(self):
        rec = InMemoryRecorder(wallclock=True)
        rt = OracleRuntime(
            _square, chunk_size=2,
            executor_factory=lambda: ThreadPoolExecutor(max_workers=2),
            recorder=rec,
        )
        with rt:
            rt.evaluate([1, 2, 3, 4])
        seconds = rec.metrics.histograms["oracle.chunk_seconds"]
        assert len(seconds) == 2
        assert all(s >= 0 for s in seconds)
        assert rec.metrics.histograms["oracle.batch_seconds"]


class TestMachineDirectConstruction:
    def test_machine_accepts_recorder_parameter(self):
        tree = _tree(height=3, seed=4)
        rec = InMemoryRecorder()
        machine = Machine(tree, recorder=rec)
        result = machine.run()
        assert result.ticks > 0
        assert rec.metrics.counters["machine.ticks"] == result.ticks
