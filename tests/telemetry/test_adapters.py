"""Adapter tests: the three stats dialects bridged into a recorder."""

from repro.models.accounting import ExecutionTrace
from repro.models.executors import RuntimeStats
from repro.simulator.machine import FaultStats
from repro.telemetry import (
    InMemoryRecorder,
    NullRecorder,
    record_execution_trace,
    record_fault_stats,
    record_runtime_stats,
)


class TestExecutionTraceAdapter:
    def _trace(self):
        trace = ExecutionTrace()
        trace.record([1, 2, 3], seconds=0.25)
        trace.record([4], seconds=0.5)
        return trace

    def test_one_step_span_per_step_with_degree(self):
        rec = InMemoryRecorder()
        record_execution_trace(rec, self._trace(), track="sequential")
        spans = rec.spans(track="sequential")
        assert [(s.start, s.end) for s in spans] == [(0, 1), (1, 2)]
        assert [dict(s.attrs)["degree"] for s in spans] == [3, 1]
        assert rec.clock == 2

    def test_derived_totals(self):
        rec = InMemoryRecorder()
        record_execution_trace(rec, self._trace())
        assert rec.metrics.counters["steps"] == 2
        assert rec.metrics.counters["work"] == 4
        assert rec.metrics.gauges["processors"] == 3

    def test_step_seconds_only_with_wallclock_opt_in(self):
        cold = InMemoryRecorder()
        record_execution_trace(cold, self._trace())
        assert "step_seconds" not in cold.metrics.histograms
        warm = InMemoryRecorder(wallclock=True)
        record_execution_trace(warm, self._trace())
        assert warm.metrics.histograms["step_seconds"] == [0.25, 0.5]

    def test_null_and_none_recorders_are_noops(self):
        record_execution_trace(None, self._trace())
        record_execution_trace(NullRecorder(), self._trace())


class TestFaultStatsAdapter:
    def test_nonzero_fields_become_counters_plus_one_event(self):
        rec = InMemoryRecorder()
        stats = FaultStats(dropped=3, retransmissions=5, acks=2)
        record_fault_stats(rec, stats)
        assert rec.metrics.counters == {
            "fault.dropped": 3, "fault.retransmissions": 5,
            "fault.acks": 2,
        }
        (event,) = rec.events
        assert (event.kind, event.name, event.track) == (
            "instant", "fault_stats", "faults"
        )
        attrs = dict(event.attrs)
        assert attrs["dropped"] == 3
        assert attrs["crashes"] == 0  # zeros reported in the event

    def test_none_stats_is_a_noop(self):
        rec = InMemoryRecorder()
        record_fault_stats(rec, None)
        assert rec.events == []


class TestRuntimeStatsAdapter:
    def test_totals_bridged(self):
        rec = InMemoryRecorder()
        stats = RuntimeStats(batches=4, chunks=9, units=30, retries=1)
        record_runtime_stats(rec, stats)
        assert rec.metrics.counters["oracle.batches"] == 4
        assert rec.metrics.counters["oracle.units"] == 30
        assert "oracle.timeouts" not in rec.metrics.counters  # zero
        (event,) = rec.events
        assert event.name == "runtime_stats"
        assert dict(event.attrs)["chunks"] == 9

    def test_oracle_seconds_only_with_wallclock(self):
        stats = RuntimeStats(batches=1, oracle_seconds=1.25)
        cold = InMemoryRecorder()
        record_runtime_stats(cold, stats)
        assert "oracle.batch_seconds" not in cold.metrics.histograms
        assert "oracle_seconds" not in dict(cold.events[0].attrs)
        warm = InMemoryRecorder(wallclock=True)
        record_runtime_stats(warm, stats)
        assert warm.metrics.histograms["oracle.batch_seconds"] == [1.25]
        assert dict(warm.events[0].attrs)["oracle_seconds"] == 1.25
