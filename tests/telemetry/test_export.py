"""Exporter tests: JSONL/Chrome structure, escaping, edge cases."""

import json

from repro.telemetry import (
    SCHEMA_VERSION,
    InMemoryRecorder,
    chrome_json,
    summarize,
    to_chrome,
    to_jsonl,
    validate_chrome_trace,
)


def _sample_recorder() -> InMemoryRecorder:
    rec = InMemoryRecorder()
    rec.advance(1)
    rec.add_span("step", 0, 1, track="solve", degree=3)
    rec.sample("degree", 3, track="solve")
    rec.advance(2)
    rec.event("reissue", track="faults", level=2)
    rec.count("solve.steps", 2)
    rec.observe("cascade", 4.0)
    return rec


class TestJsonl:
    def test_header_events_and_metrics_lines(self):
        rec = _sample_recorder()
        lines = to_jsonl(rec).splitlines()
        header = json.loads(lines[0])
        assert header == {
            "kind": "meta", "schema": SCHEMA_VERSION,
            "clock": 2, "events": 3,
        }
        records = [json.loads(line) for line in lines[1:-1]]
        assert [r["kind"] for r in records] == ["span", "counter", "instant"]
        assert records[0]["attrs"] == {"degree": 3}
        assert records[1]["value"] == 3.0
        footer = json.loads(lines[-1])
        assert footer["kind"] == "metrics"
        assert footer["counters"] == {"solve.steps": 2}
        assert footer["histograms"]["cascade"]["count"] == 1

    def test_trailing_newline_and_one_object_per_line(self):
        payload = to_jsonl(_sample_recorder())
        assert payload.endswith("\n")
        for line in payload.splitlines():
            json.loads(line)

    def test_byte_identical_across_replays(self):
        assert to_jsonl(_sample_recorder()) == to_jsonl(_sample_recorder())

    def test_empty_recorder_still_has_header_and_metrics(self):
        lines = to_jsonl(InMemoryRecorder()).splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["events"] == 0
        assert json.loads(lines[1])["kind"] == "metrics"

    def test_names_needing_escaping_round_trip(self):
        rec = InMemoryRecorder()
        nasty = 'quo"te\\back\nnew\ttab é'
        rec.add_span(nasty, 0, 1, track=nasty, note=nasty)
        lines = to_jsonl(rec).splitlines()
        record = json.loads(lines[1])
        assert record["name"] == nasty
        assert record["track"] == nasty
        assert record["attrs"]["note"] == nasty
        # The payload itself stays one-object-per-line despite the \n
        # inside the name (json escapes it).
        assert len(lines) == 3


class TestChrome:
    def test_one_process_metadata_per_track_in_appearance_order(self):
        doc = to_chrome(_sample_recorder())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["solve", "faults"]
        assert [m["pid"] for m in meta] == [1, 2]

    def test_span_counter_instant_shapes(self):
        doc = to_chrome(_sample_recorder())
        events = doc["traceEvents"]
        x = next(e for e in events if e["ph"] == "X")
        assert (x["ts"], x["dur"]) == (0, 1000)  # 1 tick = 1000us
        assert x["args"] == {"degree": 3}
        c = next(e for e in events if e["ph"] == "C")
        assert c["args"] == {"degree": 3.0}
        i = next(e for e in events if e["ph"] == "i")
        assert i["s"] == "t"
        assert i["ts"] == 2000

    def test_other_data_carries_schema_and_metrics(self):
        doc = to_chrome(_sample_recorder())
        assert doc["otherData"]["schema"] == SCHEMA_VERSION
        assert doc["otherData"]["metrics"]["counters"] == {"solve.steps": 2}

    def test_chrome_json_is_deterministic_and_parses(self):
        a = chrome_json(_sample_recorder())
        b = chrome_json(_sample_recorder())
        assert a == b
        json.loads(a)

    def test_empty_recorder_exports_valid_document(self):
        doc = to_chrome(InMemoryRecorder())
        assert doc["traceEvents"] == []
        assert validate_chrome_trace(doc) == []


class TestValidate:
    def test_sample_document_is_valid(self):
        assert validate_chrome_trace(to_chrome(_sample_recorder())) == []

    def test_rejects_non_object_and_missing_trace_events(self):
        assert validate_chrome_trace([]) == ["top level is not an object"]
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not a list"
        ]

    def test_flags_unknown_phase_and_orphan_pid(self):
        doc = to_chrome(_sample_recorder())
        doc["traceEvents"].append(
            {"ph": "Z", "name": "x", "pid": 1, "tid": 0}
        )
        doc["traceEvents"].append(
            {"ph": "i", "name": "x", "pid": 99, "tid": 0, "ts": 0, "s": "t"}
        )
        problems = validate_chrome_trace(doc)
        assert any("unknown ph" in p for p in problems)
        assert any("no process_name" in p for p in problems)

    def test_flags_negative_timestamps_and_durations(self):
        doc = to_chrome(_sample_recorder())
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                event["ts"] = -5
                event["dur"] = -1
        problems = validate_chrome_trace(doc)
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)


class TestSummarize:
    def test_digest_mentions_tracks_and_metrics(self):
        out = summarize(_sample_recorder())
        assert "clock: 2" in out
        assert "track solve: counter=1, span=1" in out
        assert "counter solve.steps: 2" in out
        assert "histogram cascade: count=1" in out

    def test_empty_recorder_digest(self):
        out = summarize(InMemoryRecorder())
        assert "events: 0" in out
