"""Unit tests for the recorder core: clock, spans, metrics, coalescer."""

import pytest

from repro.telemetry import (
    NULL_RECORDER,
    ActivityCoalescer,
    InMemoryRecorder,
    NullRecorder,
    Recorder,
    TraceEvent,
    live,
)


class TestLive:
    def test_none_and_disabled_normalise_to_none(self):
        assert live(None) is None
        assert live(NullRecorder()) is None
        assert live(NULL_RECORDER) is None

    def test_enabled_recorder_passes_through(self):
        rec = InMemoryRecorder()
        assert live(rec) is rec

    def test_both_recorders_satisfy_the_protocol(self):
        assert isinstance(InMemoryRecorder(), Recorder)
        assert isinstance(NullRecorder(), Recorder)


class TestNullRecorder:
    def test_every_method_is_a_noop(self):
        rec = NullRecorder()
        rec.advance(10)
        with rec.span("s"):
            pass
        rec.add_span("s", 0, 1)
        rec.event("e")
        rec.count("c")
        rec.gauge("g", 1.0)
        rec.observe("h", 1.0)
        rec.sample("x", 2.0)
        assert rec.enabled is False
        assert rec.wallclock is False


class TestInMemoryRecorder:
    def test_clock_advances_monotonically(self):
        rec = InMemoryRecorder()
        rec.advance(3)
        rec.advance(1)  # never goes backwards
        assert rec.clock == 3
        rec.advance(7)
        assert rec.clock == 7

    def test_span_context_manager_brackets_the_clock(self):
        rec = InMemoryRecorder()
        rec.advance(2)
        with rec.span("phase", track="t", depth=1):
            rec.advance(5)
        (event,) = rec.events
        assert event == TraceEvent(
            "span", "phase", "t", 2, 5, attrs=(("depth", 1),)
        )

    def test_span_recorded_even_when_body_raises(self):
        rec = InMemoryRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                rec.advance(4)
                raise RuntimeError("x")
        assert rec.spans()[0].end == 4

    def test_add_span_attrs_are_sorted_deterministically(self):
        rec = InMemoryRecorder()
        rec.add_span("s", 0, 1, track="t", zeta=1, alpha=2)
        assert rec.events[0].attrs == (("alpha", 2), ("zeta", 1))

    def test_event_is_an_instant_at_the_current_clock(self):
        rec = InMemoryRecorder()
        rec.advance(9)
        rec.event("marker", track="faults", level=3)
        (event,) = rec.events
        assert (event.kind, event.start, event.end) == ("instant", 9, 9)
        assert dict(event.attrs) == {"level": 3}

    def test_sample_feeds_registry_and_appends_counter_event(self):
        rec = InMemoryRecorder()
        rec.advance(4)
        rec.sample("degree", 6, track="machine")
        assert rec.metrics.gauges["degree"] == 6
        (event,) = rec.events
        assert (event.kind, event.value) == ("counter", 6.0)

    def test_count_gauge_observe_do_not_append_events(self):
        rec = InMemoryRecorder()
        rec.count("c", 2)
        rec.gauge("g", 5)
        rec.observe("h", 0.5)
        assert rec.events == []
        assert rec.metrics.counters["c"] == 2

    def test_spans_and_tracks_introspection(self):
        rec = InMemoryRecorder()
        rec.add_span("a", 0, 1, track="x")
        rec.event("e", track="y")
        rec.add_span("b", 1, 2, track="x")
        assert [s.name for s in rec.spans()] == ["a", "b"]
        assert [s.name for s in rec.spans(track="x")] == ["a", "b"]
        assert rec.spans(track="y") == []
        assert rec.tracks() == ["x", "y"]  # first-appearance order


class TestActivityCoalescer:
    def test_maximal_runs_become_single_spans(self):
        rec = InMemoryRecorder()
        co = ActivityCoalescer(rec, "level-0")
        for t, busy in enumerate([True, True, False, False, False, True]):
            co.observe(t, busy)
        co.finish(6)
        assert [(s.name, s.start, s.end) for s in rec.spans()] == [
            ("busy", 0, 2), ("idle", 2, 5), ("busy", 5, 6),
        ]
        assert co.busy_ticks == 3

    def test_spans_tile_the_whole_run(self):
        rec = InMemoryRecorder()
        co = ActivityCoalescer(rec, "t")
        pattern = [True, False, True, True, False, False, True, False]
        for t, busy in enumerate(pattern):
            co.observe(t, busy)
        co.finish(len(pattern))
        spans = rec.spans()
        assert spans[0].start == 0
        assert spans[-1].end == len(pattern)
        for prev, cur in zip(spans, spans[1:]):
            assert prev.end == cur.start
            assert prev.name != cur.name  # alternating by construction

    def test_finish_is_idempotent_and_empty_run_emits_nothing(self):
        rec = InMemoryRecorder()
        co = ActivityCoalescer(rec, "t")
        co.finish(5)
        assert rec.events == []
        co.observe(0, True)
        co.finish(1)
        co.finish(1)
        assert len(rec.spans()) == 1
