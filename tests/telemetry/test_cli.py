"""``repro trace`` CLI tests: every algo, both formats, replay identity."""

import json

import pytest

from repro.__main__ import main
from repro.telemetry import validate_chrome_trace
from repro.telemetry.cli import ALGOS, record_run


class TestRecordRun:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_every_algo_records_events(self, algo):
        rec = record_run(algo, branching=2, height=4, seed=1, width=2)
        assert rec.events
        assert rec.clock > 0
        assert rec.metrics.snapshot()["counters"]

    def test_machine_run_has_one_track_per_level(self):
        rec = record_run("machine", branching=2, height=6, seed=2026,
                         width=2)
        tracks = rec.tracks()
        assert [f"level-{d}" for d in range(7)] == sorted(
            (t for t in tracks if t.startswith("level-")),
            key=lambda t: int(t.split("-")[1]),
        )


class TestTraceCommand:
    def test_chrome_export_validates_and_loads(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--height", "4", "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        names = {
            e["args"]["name"] for e in document["traceEvents"]
            if e["ph"] == "M"
        }
        assert "level-0" in names

    def test_jsonl_replay_is_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        argv = ["trace", "--format", "jsonl", "--height", "4"]
        assert main(argv + ["--out", str(a)]) == 0
        assert main(argv + ["--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_different_seeds_differ(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        argv = ["trace", "--format", "jsonl", "--height", "4"]
        assert main(argv + ["--seed", "1", "--out", str(a)]) == 0
        assert main(argv + ["--seed", "2", "--out", str(b)]) == 0
        assert a.read_bytes() != b.read_bytes()

    def test_stdout_output(self, capsys):
        assert main(["trace", "--format", "jsonl", "--height", "3",
                     "--out", "-"]) == 0
        captured = capsys.readouterr().out
        header = json.loads(captured.splitlines()[0])
        assert header["kind"] == "meta"

    def test_summary_action(self, capsys):
        assert main(["trace", "summary", "--algo", "solve",
                     "--height", "4"]) == 0
        out = capsys.readouterr().out
        assert "clock:" in out
        assert "counter solve.steps:" in out

    def test_quick_mode_self_validates(self, tmp_path, capsys):
        out = tmp_path / "q.json"
        assert main(["trace", "--quick", "--out", str(out)]) == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_algos_through_the_cli(self, algo, tmp_path):
        out = tmp_path / f"{algo}.json"
        assert main(["trace", "--algo", algo, "--height", "4",
                     "--out", str(out)]) == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
