"""Unit tests for the metrics registry and histogram summaries."""

from repro.telemetry import MetricsRegistry


class TestUpdates:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.count("c", 4)
        reg.count("other", 0.5)
        assert reg.counters == {"c": 5, "other": 0.5}

    def test_gauges_keep_latest(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1)
        reg.gauge("g", 9)
        assert reg.gauges["g"] == 9

    def test_observations_append(self):
        reg = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            reg.observe("h", v)
        assert reg.histograms["h"] == [3.0, 1.0, 2.0]


class TestSummaries:
    def test_summary_of_missing_histogram_is_none(self):
        assert MetricsRegistry().histogram_summary("nope") is None

    def test_summary_statistics(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("h", float(v))
        s = reg.histogram_summary("h")
        assert (s.count, s.min, s.max) == (100, 1.0, 100.0)
        assert s.total == 5050.0
        assert s.mean == 50.5
        # Nearest-rank on the sorted values.
        assert s.p50 == 51.0
        assert s.p90 == 91.0
        assert s.p99 == 100.0

    def test_single_observation_summary(self):
        reg = MetricsRegistry()
        reg.observe("h", 7.0)
        s = reg.histogram_summary("h")
        assert (s.p50, s.p90, s.p99) == (7.0, 7.0, 7.0)
        assert s.mean == 7.0

    def test_summary_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for v in values:
            a.observe("h", v)
        for v in sorted(values):
            b.observe("h", v)
        assert a.histogram_summary("h") == b.histogram_summary("h")


class TestSnapshot:
    def test_snapshot_keys_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.count("z", 1)
        reg.count("a", 2)
        reg.gauge("m", 3)
        reg.observe("h", 1.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # must serialise as-is

    def test_empty_snapshot(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
