"""``--trace-out`` on chaos and bench emits the one JSONL schema.

All three trace emitters (``repro trace --format jsonl``, ``repro
chaos --trace-out``, ``repro bench --trace-out``) funnel through
``telemetry.cli.emit_jsonl_trace``; these tests pin the resulting
schema identity so a divergence in any one path fails loudly.
"""

import json

from repro.bench.wallclock import run_wallclock
from repro.faults import run_chaos
from repro.telemetry.cli import record_run
from repro.telemetry.export import SCHEMA_VERSION, to_jsonl


def _parse(path):
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    records = [json.loads(line) for line in lines[1:-1]]
    footer = json.loads(lines[-1])
    return header, records, footer


def _chaos_trace(tmp_path, name="chaos.jsonl"):
    out = tmp_path / name
    rc = run_chaos(
        height=4, num_seeds=1, rates=(0.05,), kinds=("drop",),
        max_faults=16, trace_out=str(out),
    )
    assert rc == 0
    return out


def _bench_trace(tmp_path, name="bench.jsonl"):
    out = tmp_path / name
    rc = run_wallclock(
        branching=2, height=4, widths=(1,), seed=7,
        trace_out=str(out),
    )
    assert rc == 0
    return out


def test_chaos_trace_out_writes_valid_jsonl(tmp_path, capsys):
    header, records, footer = _parse(_chaos_trace(tmp_path))
    assert header["kind"] == "meta"
    assert header["schema"] == SCHEMA_VERSION
    assert header["events"] == len(records)
    assert footer["kind"] == "metrics"
    # A machine run under faults: level tracks and fault accounting.
    assert any(r["track"].startswith("level-") for r in records)
    assert any(r["name"] == "fault_stats" for r in records)


def test_bench_trace_out_writes_valid_jsonl(tmp_path, capsys):
    header, records, footer = _parse(_bench_trace(tmp_path))
    assert header["schema"] == SCHEMA_VERSION
    assert any(r["track"] == "solve" for r in records)
    # The bench recorder opts into wall time, so per-step seconds show
    # up as a histogram — logical timestamps stay the skeleton.
    assert all(isinstance(r["start"], int) for r in records)


def test_all_three_emitters_share_one_schema(tmp_path, capsys):
    chaos_h, chaos_r, chaos_f = _parse(_chaos_trace(tmp_path))
    bench_h, bench_r, bench_f = _parse(_bench_trace(tmp_path))
    trace_payload = to_jsonl(
        record_run("machine", branching=2, height=4, seed=0, width=2)
    ).splitlines()
    trace_h = json.loads(trace_payload[0])
    trace_r = [json.loads(line) for line in trace_payload[1:-1]]
    trace_f = json.loads(trace_payload[-1])

    assert set(chaos_h) == set(bench_h) == set(trace_h)
    assert chaos_h["schema"] == bench_h["schema"] == trace_h["schema"]
    assert set(chaos_f) == set(bench_f) == set(trace_f)

    def key_profile(records):
        # kind -> the set of key-sets seen for that record kind.
        profile = {}
        for r in records:
            profile.setdefault(r["kind"], set()).add(
                frozenset(k for k in r if k != "attrs")
            )
        return profile

    chaos_p = key_profile(chaos_r)
    bench_p = key_profile(bench_r)
    trace_p = key_profile(trace_r)
    for kind in ("span", "counter"):
        assert chaos_p[kind] == bench_p[kind] == trace_p[kind], kind


def test_chaos_trace_out_is_replay_deterministic(tmp_path, capsys):
    a = _chaos_trace(tmp_path, "a.jsonl")
    b = _chaos_trace(tmp_path, "b.jsonl")
    assert a.read_bytes() == b.read_bytes()
