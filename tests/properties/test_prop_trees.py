"""Property-based tests for the tree substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import ExplicitTree, PermutedTree, UniformTree, exact_value

from ..conftest import nested_boolean


@settings(max_examples=60, deadline=None)
@given(nested_boolean())
def test_nested_round_trip(spec):
    if not isinstance(spec, list):
        spec = [spec]
    tree = ExplicitTree.from_nested(spec)
    assert tree.to_nested() == spec


@settings(max_examples=60, deadline=None)
@given(nested_boolean())
def test_structure_invariants(spec):
    if not isinstance(spec, list):
        spec = [spec]
    tree = ExplicitTree.from_nested(spec)
    tree.validate()
    for node in tree.iter_nodes():
        # Depth equals path length minus one.
        assert tree.depth(node) == len(tree.path_from_root(node)) - 1
        # left + self + right siblings partition the parent's children.
        parent = tree.parent(node)
        if parent is not None:
            combined = (
                tree.left_siblings(node) + (node,)
                + tree.right_siblings(node)
            )
            assert combined == tree.children(parent)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=6),
    st.randoms(use_true_random=False),
)
def test_uniform_tree_indexing_laws(d, n, rnd):
    leaves = np.array(
        [rnd.randint(0, 1) for _ in range(d ** n)], dtype=np.int8
    )
    tree = UniformTree(d, n, leaves)
    # Parent-child inverse at random nodes.
    for _ in range(10):
        node = rnd.randrange(tree.num_nodes())
        if not tree.is_leaf(node):
            for child in tree.children(node):
                assert tree.parent(child) == node
                assert tree.depth(child) == tree.depth(node) + 1
    # Leaf ids form the last contiguous block.
    assert tree.first_leaf_id() == tree.num_nodes() - d ** n


@settings(max_examples=40, deadline=None)
@given(nested_boolean(), st.integers(min_value=0, max_value=2 ** 31))
def test_permutation_preserves_value(spec, seed):
    if not isinstance(spec, list):
        spec = [spec]
    tree = ExplicitTree.from_nested(spec)
    view = PermutedTree(tree, seed)
    assert exact_value(view) == exact_value(tree)


@settings(max_examples=40, deadline=None)
@given(nested_boolean(), st.integers(min_value=0, max_value=2 ** 31))
def test_permutation_is_bijection(spec, seed):
    if not isinstance(spec, list):
        spec = [spec]
    tree = ExplicitTree.from_nested(spec)
    view = PermutedTree(tree, seed)
    for node in tree.iter_nodes():
        if not tree.is_leaf(node):
            assert sorted(view.children(node)) == \
                sorted(tree.children(node))
