"""Differential properties: rescan == incremental == arena backends.

Every width-w engine accepts ``backend="rescan" | "incremental" |
"arena"``; the three must be *step-for-step* identical — same root
value, same per-step degree sequence, same per-step batches (and
therefore the same ``most_urgent`` selections on the bounded
variants, which pick ``p`` of the live leaves each step) — on
arbitrary tree shapes.  The suite drives all backends over nested
(adversarial-shape) and iid-generated instances; together the tests
here exercise well over 275 generated instances per run.  The
node-expansion model is the exception: it grows the tree as it goes,
which the arena's fixed up-front lowering contradicts, so there the
matrix stays two-way and arena is pinned to a loud rejection.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    parallel_solve,
    saturation_solve,
    sequential_solve,
    team_solve,
)
from repro.core.alphabeta import (
    minimax,
    parallel_alpha_beta,
    sequential_alpha_beta,
)
from repro.core.nodeexpansion import n_parallel_solve
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias
from repro.types import Gate

from ..conftest import (
    boolean_tree_from_spec,
    minmax_tree_from_spec,
    nested_boolean,
    nested_minmax,
)

GATES = st.sampled_from([Gate.NOR, Gate.OR, Gate.AND, Gate.NAND])


def _signature(result):
    return (result.value, result.trace.degrees, result.trace.batches)


def _assert_backends_match(
    solver, *args, backends=("rescan", "incremental", "arena"), **kwargs
):
    reference = solver(
        *args, keep_batches=True, backend=backends[0], **kwargs
    )
    for backend in backends[1:]:
        other = solver(*args, keep_batches=True, backend=backend, **kwargs)
        assert _signature(other) == _signature(reference), backend
    return reference


@settings(max_examples=60, deadline=None)
@given(nested_boolean(), GATES, st.integers(min_value=0, max_value=3))
def test_width_backends_identical_nested(spec, gate, width):
    tree = boolean_tree_from_spec(spec, gates=gate)
    _assert_backends_match(parallel_solve, tree, width)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_width_backends_identical_iid(branching, height, seed):
    tree = iid_boolean(
        branching, height, level_invariant_bias(branching), seed=seed
    )
    for width in (1, 2):
        _assert_backends_match(parallel_solve, tree, width)
    for width, procs in ((2, 2), (3, 1)):
        _assert_backends_match(
            parallel_solve, tree, width, max_processors=procs
        )


@settings(max_examples=50, deadline=None)
@given(nested_boolean(), GATES)
def test_bounded_team_saturation_backends_identical(spec, gate):
    tree = boolean_tree_from_spec(spec, gates=gate)
    for width, procs in ((2, 1), (3, 2)):
        _assert_backends_match(
            parallel_solve, tree, width, max_processors=procs
        )
    for procs in (1, 2, 5):
        _assert_backends_match(team_solve, tree, procs)
    _assert_backends_match(saturation_solve, tree)


@settings(max_examples=50, deadline=None)
@given(nested_boolean(), GATES)
def test_width0_equals_sequential(spec, gate):
    tree = boolean_tree_from_spec(spec, gates=gate)
    seq = sequential_solve(tree)
    for backend in ("incremental", "rescan", "arena"):
        w0 = parallel_solve(
            tree, 0, keep_batches=True, backend=backend
        )
        assert (seq.value, seq.trace.degrees) == (
            w0.value, w0.trace.degrees
        )
        # Width 0 *is* Sequential SOLVE: same leaves, same order.
        assert [leaf for (leaf,) in w0.trace.batches] == seq.evaluated


@settings(max_examples=50, deadline=None)
@given(nested_minmax(), st.integers(min_value=0, max_value=2))
def test_alphabeta_backends_identical(spec, width):
    tree = minmax_tree_from_spec(spec)
    result = _assert_backends_match(parallel_alpha_beta, tree, width)
    # Cross-checks: parallel alpha-beta at any width, sequential
    # alpha-beta on either backend, and plain minimax all agree.
    truth = minimax(tree).value
    assert result.value == truth
    for backend in ("incremental", "rescan", "arena"):
        assert sequential_alpha_beta(tree, backend=backend).value == truth


@settings(max_examples=40, deadline=None)
@given(nested_boolean(), GATES, st.integers(min_value=0, max_value=2))
def test_expansion_backends_identical(spec, gate, width):
    tree = boolean_tree_from_spec(spec, gates=gate)
    _assert_backends_match(
        n_parallel_solve, tree, width, backends=("rescan", "incremental")
    )
    with pytest.raises(ValueError, match="no arena backend"):
        n_parallel_solve(tree, width, backend="arena")
