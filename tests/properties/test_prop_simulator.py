"""Property-based tests for the message-passing simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import simulate
from repro.trees import ExplicitTree, exact_value


def nested_binary(max_leaves=16):
    """Strictly binary nested specs (the machine's requirement)."""
    return st.recursive(
        st.integers(min_value=0, max_value=1),
        lambda kids: st.tuples(kids, kids).map(list),
        max_leaves=max_leaves,
    )


@settings(max_examples=50, deadline=None)
@given(nested_binary())
def test_machine_value_matches_oracle(spec):
    if not isinstance(spec, list):
        spec = [spec, spec]  # promote a bare leaf to a binary root
    tree = ExplicitTree.from_nested(spec)
    res = simulate(tree)
    assert res.value == exact_value(tree)


@settings(max_examples=25, deadline=None)
@given(nested_binary(), st.integers(min_value=1, max_value=4))
def test_machine_fixed_p_value(spec, p):
    if not isinstance(spec, list):
        spec = [spec, spec]
    tree = ExplicitTree.from_nested(spec)
    res = simulate(tree, physical_processors=p)
    assert res.value == exact_value(tree)


@settings(max_examples=25, deadline=None)
@given(nested_binary())
def test_machine_cost_consistency(spec):
    if not isinstance(spec, list):
        spec = [spec, spec]
    tree = ExplicitTree.from_nested(spec)
    res = simulate(tree)
    assert sum(res.degree_by_tick) == res.expansions
    assert res.max_degree <= tree.height() + 1
    assert res.ticks >= 1
