"""Property-based tests: Nim vs Sprague-Grundy; fast path vs engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sequential_solve
from repro.core.fastpath import (
    uniform_expansion_cost,
    uniform_sequential_cost,
    uniform_value,
)
from repro.core.nodeexpansion import n_sequential_solve
from repro.games import Nim, win_loss_tree
from repro.trees import exact_value
from repro.trees.generators import iid_boolean


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=4), min_size=1,
             max_size=3),
    st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
)
def test_nim_tree_always_matches_grundy(heaps, max_take):
    game = Nim(tuple(heaps), max_take=max_take)
    tree = win_loss_tree(game)
    value = n_sequential_solve(tree).value
    assert bool(value) == game.first_player_wins()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=6),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=100_000),
)
def test_fastpath_agrees_with_engines(d, n, p, seed):
    tree = iid_boolean(d, n, p, seed=seed)
    assert uniform_value(tree) == exact_value(tree)
    value, cost = uniform_sequential_cost(tree)
    ref = sequential_solve(tree)
    assert (value, cost) == (ref.value, ref.total_work)
    value2, expansions = uniform_expansion_cost(tree)
    ref2 = n_sequential_solve(tree)
    assert (value2, expansions) == (ref2.value, ref2.total_work)
