"""Final property sweep: traces, near-uniform trees, goal trees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import schedule_stats
from repro.core import parallel_solve, sequential_solve
from repro.logic import KnowledgeBase, goal_tree
from repro.models import ExecutionTrace
from repro.trees import exact_value
from repro.trees.generators import near_uniform_boolean


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                max_size=30))
def test_trace_invariants(degrees):
    trace = ExecutionTrace()
    for d in degrees:
        trace.record(list(range(d)))
    assert trace.num_steps == len(degrees)
    assert trace.total_work == sum(degrees)
    assert trace.processors == max(degrees)
    hist = trace.degree_histogram()
    assert sum(hist.values()) == trace.num_steps
    assert sum(k * v for k, v in hist.items()) == trace.total_work
    stats = schedule_stats(trace)
    assert 0 < stats.efficiency <= 1
    assert stats.mean_degree <= stats.processors


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=7),
    st.floats(min_value=0.1, max_value=0.9),
    st.integers(min_value=0, max_value=10_000),
)
def test_near_uniform_trees_evaluate_consistently(d, n, p, seed):
    tree = near_uniform_boolean(d, n, alpha=0.5, beta=0.5, p=p,
                                seed=seed)
    truth = exact_value(tree)
    seq = sequential_solve(tree)
    par = parallel_solve(tree, 1)
    assert seq.value == par.value == truth
    assert par.num_steps <= seq.num_steps
    assert par.total_work <= tree.num_leaves()


def kb_strategy():
    atom = st.integers(min_value=0, max_value=6).map(lambda i: f"a{i}")
    rule = st.tuples(atom, st.lists(atom, max_size=3))
    return st.tuples(st.lists(atom, max_size=3),
                     st.lists(rule, max_size=10))


@settings(max_examples=40, deadline=None)
@given(kb_strategy())
def test_goal_trees_match_forward_chaining(spec):
    facts, rules = spec
    kb = KnowledgeBase(facts=facts)
    for head, body in rules:
        kb.add_rule(head, body)
    closure = kb.forward_closure()
    for i in range(7):
        atom = f"a{i}"
        tree = goal_tree(kb, atom)
        assert bool(sequential_solve(tree).value) == (atom in closure)
