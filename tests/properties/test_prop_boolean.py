"""Property-based tests (hypothesis) for the Boolean algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import skeleton_of
from repro.core import (
    parallel_solve,
    sequential_solve,
    team_solve,
)
from repro.core.nodeexpansion import n_parallel_solve, n_sequential_solve
from repro.trees import exact_value
from repro.types import Gate

from ..conftest import boolean_tree_from_spec, nested_boolean

GATES = st.sampled_from([Gate.NOR, Gate.OR, Gate.AND, Gate.NAND])


@settings(max_examples=60, deadline=None)
@given(nested_boolean(), GATES)
def test_all_algorithms_agree_with_oracle(spec, gate):
    tree = boolean_tree_from_spec(spec, gates=gate)
    truth = exact_value(tree)
    assert sequential_solve(tree).value == truth
    assert team_solve(tree, 3).value == truth
    assert parallel_solve(tree, 1).value == truth
    assert parallel_solve(tree, 2).value == truth
    assert n_sequential_solve(tree).value == truth
    assert n_parallel_solve(tree, 1).value == truth


@settings(max_examples=60, deadline=None)
@given(nested_boolean())
def test_width_monotonicity(spec):
    tree = boolean_tree_from_spec(spec)
    steps = [parallel_solve(tree, w).num_steps for w in range(3)]
    assert steps[0] >= steps[1] >= steps[2]


@settings(max_examples=60, deadline=None)
@given(nested_boolean())
def test_width0_equals_recursive_sequential(spec):
    tree = boolean_tree_from_spec(spec)
    assert parallel_solve(tree, 0).evaluated == \
        sequential_solve(tree).evaluated


@settings(max_examples=50, deadline=None)
@given(nested_boolean(), st.integers(min_value=1, max_value=6))
def test_team_processor_bound_and_value(spec, p):
    tree = boolean_tree_from_spec(spec)
    res = team_solve(tree, p)
    assert res.processors <= p
    assert res.value == exact_value(tree)


@settings(max_examples=40, deadline=None)
@given(nested_boolean())
def test_prop2_skeleton_monotone(spec):
    tree = boolean_tree_from_spec(spec)
    skel = skeleton_of(tree)
    for w in (1, 2):
        assert parallel_solve(tree, w).num_steps <= \
            parallel_solve(skel, w).num_steps


@settings(max_examples=40, deadline=None)
@given(nested_boolean())
def test_sequential_work_invariant_under_skeleton(spec):
    tree = boolean_tree_from_spec(spec)
    skel = skeleton_of(tree)
    assert sequential_solve(tree).num_steps == \
        sequential_solve(skel).num_steps


@settings(max_examples=40, deadline=None)
@given(nested_boolean())
def test_parallel_work_bounded_by_leaves(spec):
    tree = boolean_tree_from_spec(spec)
    res = parallel_solve(tree, 2)
    assert res.total_work <= tree.num_leaves()
    assert len(set(res.evaluated)) == len(res.evaluated)


@settings(max_examples=40, deadline=None)
@given(nested_boolean())
def test_node_expansion_covers_leaf_model(spec):
    tree = boolean_tree_from_spec(spec)
    leaves = [
        v for v in n_sequential_solve(tree).evaluated
        if tree.is_leaf(v)
    ]
    assert leaves == sequential_solve(tree).evaluated
