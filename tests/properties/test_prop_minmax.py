"""Property-based tests for the MIN/MAX algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import theorem2_holds
from repro.core.alphabeta import (
    alpha_beta,
    alpha_beta_leaf_set,
    minimax,
    parallel_alpha_beta,
    scout,
    sequential_alpha_beta,
)
from repro.core.nodeexpansion import n_sequential_alpha_beta
from repro.trees import exact_value

from ..conftest import minmax_tree_from_spec, nested_minmax


@settings(max_examples=60, deadline=None)
@given(nested_minmax())
def test_all_minmax_algorithms_agree(spec):
    tree = minmax_tree_from_spec(spec)
    truth = exact_value(tree)
    assert minimax(tree).value == truth
    assert alpha_beta(tree).value == truth
    assert scout(tree).value == truth
    assert sequential_alpha_beta(tree).value == truth
    assert parallel_alpha_beta(tree, 1).value == truth
    assert n_sequential_alpha_beta(tree).value == truth


@settings(max_examples=60, deadline=None)
@given(nested_minmax())
def test_pruning_process_equals_classical_leaf_sequence(spec):
    tree = minmax_tree_from_spec(spec)
    assert sequential_alpha_beta(tree).evaluated == \
        alpha_beta_leaf_set(tree)


# Tie-heavy trees: integer leaves from a tiny domain.
def nested_tied():
    return st.recursive(
        st.integers(min_value=0, max_value=2).map(float),
        lambda kids: st.lists(kids, min_size=1, max_size=3),
        max_leaves=16,
    )


@settings(max_examples=60, deadline=None)
@given(nested_tied())
def test_pruning_process_with_ties(spec):
    tree = minmax_tree_from_spec(spec)
    assert sequential_alpha_beta(tree).evaluated == \
        alpha_beta_leaf_set(tree)


@settings(max_examples=40, deadline=None)
@given(nested_minmax(), st.integers(min_value=0, max_value=2))
def test_theorem2_invariant_every_step(spec, width):
    tree = minmax_tree_from_spec(spec)
    truth = exact_value(tree)

    def check(state, step, batch):
        assert theorem2_holds(state, truth)

    res = parallel_alpha_beta(tree, width, on_step=check)
    assert res.value == truth


@settings(max_examples=40, deadline=None)
@given(nested_minmax())
def test_alpha_beta_never_beats_fact_bounds(spec):
    tree = minmax_tree_from_spec(spec)
    ab = alpha_beta(tree)
    # Alpha-beta must evaluate at least one leaf and at most all.
    assert 1 <= ab.total_work <= tree.num_leaves()
    # Minimax reads everything.
    assert minimax(tree).total_work == tree.num_leaves()


@settings(max_examples=40, deadline=None)
@given(nested_minmax())
def test_width_monotonicity_minmax(spec):
    tree = minmax_tree_from_spec(spec)
    steps = [parallel_alpha_beta(tree, w).num_steps for w in range(3)]
    assert steps[0] >= steps[1] >= steps[2]
