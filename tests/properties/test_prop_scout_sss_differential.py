"""Differential properties for Scout and SSS* against αβ/minimax.

``scout.py`` and ``sss.py`` were only lightly covered by direct unit
tests; these properties pin their *values* to the sequential αβ and
plain minimax references on random nested trees, tie-heavy trees and
the adversarial generator instances, and pin the theoretical
dominance relations on their work counters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabeta import (
    alpha_beta,
    alpha_beta_leaf_set,
    minimax,
    scout,
    sequential_alpha_beta,
    sss_leaf_count,
    sss_star,
)
from repro.trees import exact_value
from repro.trees.generators import iid_minmax, iid_minmax_integers
from repro.trees.generators.adversarial import alpha_beta_worst_case

from ..conftest import minmax_tree_from_spec, nested_minmax


@settings(max_examples=80, deadline=None)
@given(nested_minmax())
def test_scout_agrees_with_references(spec):
    tree = minmax_tree_from_spec(spec)
    truth = exact_value(tree)
    result = scout(tree)
    assert result.value == truth
    assert result.value == minimax(tree).value
    assert result.value == sequential_alpha_beta(tree).value


@settings(max_examples=80, deadline=None)
@given(nested_minmax())
def test_sss_agrees_with_references(spec):
    tree = minmax_tree_from_spec(spec)
    truth = exact_value(tree)
    result = sss_star(tree)
    assert result.value == truth
    assert result.value == minimax(tree).value
    assert result.value == alpha_beta(tree).value


def nested_tied():
    """Tie-heavy specs: integer leaves from a three-value domain."""
    return st.recursive(
        st.integers(min_value=0, max_value=2).map(float),
        lambda kids: st.lists(kids, min_size=1, max_size=3),
        max_leaves=16,
    )


@settings(max_examples=60, deadline=None)
@given(nested_tied())
def test_scout_and_sss_agree_under_heavy_ties(spec):
    tree = minmax_tree_from_spec(spec)
    truth = exact_value(tree)
    assert scout(tree).value == truth
    assert sss_star(tree).value == truth


@settings(max_examples=40, deadline=None)
@given(nested_minmax())
def test_sss_never_examines_more_leaves_than_alpha_beta(spec):
    # Stockman's dominance theorem: SSS* examines a subset of the
    # leaves examined by directional αβ.
    tree = minmax_tree_from_spec(spec)
    assert sss_leaf_count(tree) <= len(alpha_beta_leaf_set(tree))


@settings(max_examples=40, deadline=None)
@given(nested_minmax())
def test_scout_distinct_leaves_bounded_by_minimax(spec):
    # Test calls may revisit leaves (events can exceed the leaf
    # count), but the *distinct* leaves SCOUT touches are a subset of
    # the frontier minimax reads exhaustively.
    tree = minmax_tree_from_spec(spec)
    result = scout(tree)
    assert result.distinct_leaves <= minimax(tree).num_steps
    assert set(result.evaluated) <= set(minimax(tree).evaluated)


@pytest.mark.parametrize("branching,height", [(2, 3), (2, 5), (3, 3)])
@pytest.mark.parametrize("seed", [7, 8, 9])
def test_scout_sss_on_iid_instances(branching, height, seed):
    for tree in (
        iid_minmax(branching, height, seed=seed),
        iid_minmax_integers(branching, height, seed=seed, num_values=3),
    ):
        truth = exact_value(tree)
        assert scout(tree).value == truth
        assert sss_star(tree).value == truth


@pytest.mark.parametrize("branching,height", [(2, 4), (2, 6), (3, 3)])
def test_scout_sss_on_adversarial_instances(branching, height):
    tree = alpha_beta_worst_case(branching, height)
    truth = exact_value(tree)
    assert scout(tree).value == truth
    assert sss_star(tree).value == truth
    assert sss_leaf_count(tree) <= len(alpha_beta_leaf_set(tree))
