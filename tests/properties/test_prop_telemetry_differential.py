"""Differential properties: recorders never change what engines compute.

The telemetry parameter threads through every engine entry point; the
contract is that the run is *identical* — same value, same per-step
degrees, same batches, same machine tick/message accounting — whether
``recorder`` is ``None``, a ``NullRecorder``, or a live
``InMemoryRecorder``.  A second property pins replay determinism: two
recordings of the same seeded run serialise to identical JSONL.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parallel_solve, team_solve
from repro.core.alphabeta import parallel_alpha_beta
from repro.core.nodeexpansion import n_parallel_solve
from repro.simulator import simulate
from repro.telemetry import InMemoryRecorder, NullRecorder
from repro.telemetry.export import to_jsonl
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias

from ..conftest import (
    boolean_tree_from_spec,
    minmax_tree_from_spec,
    nested_boolean,
    nested_minmax,
)

RECORDERS = (lambda: None, NullRecorder, InMemoryRecorder)


def _signature(result):
    return (result.value, result.trace.degrees, result.trace.batches)


def _assert_recorder_invariant(solver, *args, **kwargs):
    signatures = [
        _signature(solver(
            *args, keep_batches=True, recorder=make(), **kwargs
        ))
        for make in RECORDERS
    ]
    assert signatures[0] == signatures[1] == signatures[2]


@settings(max_examples=40, deadline=None)
@given(nested_boolean(), st.integers(min_value=0, max_value=3))
def test_parallel_solve_recorder_invariant(spec, width):
    tree = boolean_tree_from_spec(spec)
    _assert_recorder_invariant(parallel_solve, tree, width)


@settings(max_examples=25, deadline=None)
@given(nested_boolean(), st.integers(min_value=1, max_value=4))
def test_team_solve_recorder_invariant(spec, p):
    tree = boolean_tree_from_spec(spec)
    _assert_recorder_invariant(team_solve, tree, p)


@settings(max_examples=25, deadline=None)
@given(nested_minmax(), st.integers(min_value=0, max_value=2))
def test_parallel_alpha_beta_recorder_invariant(spec, width):
    tree = minmax_tree_from_spec(spec)
    _assert_recorder_invariant(parallel_alpha_beta, tree, width)


@settings(max_examples=25, deadline=None)
@given(nested_boolean(), st.integers(min_value=1, max_value=3))
def test_n_parallel_solve_recorder_invariant(spec, width):
    tree = boolean_tree_from_spec(spec)
    _assert_recorder_invariant(n_parallel_solve, tree, width)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=10_000),
)
def test_simulate_recorder_invariant(height, seed):
    tree = iid_boolean(2, height, level_invariant_bias(2), seed=seed)
    runs = [
        simulate(tree, recorder=make()) for make in RECORDERS
    ]
    profiles = [
        (r.value, r.ticks, r.expansions, r.messages, r.degree_by_tick)
        for r in runs
    ]
    assert profiles[0] == profiles[1] == profiles[2]


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["machine", "solve"]),
)
def test_recordings_replay_byte_identical(height, seed, mode):
    tree = iid_boolean(2, height, level_invariant_bias(2), seed=seed)

    def record():
        rec = InMemoryRecorder()
        if mode == "machine":
            simulate(tree, recorder=rec)
        else:
            parallel_solve(tree, 2, recorder=rec)
        return to_jsonl(rec)

    assert record() == record()
