"""Property-based tests for the selection machinery itself."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BooleanState, parallel_solve, select_by_pruning_number
from repro.core.alphabeta import (
    AlphaBetaState,
    prune_to_fixpoint,
    select_unfinished_by_pruning_number,
)
from repro.trees.generators import iid_boolean, iid_minmax

from ..conftest import minmax_tree_from_spec, nested_minmax


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=10_000),
)
def test_width_selection_size_obeys_code_counting(d, n, w, seed):
    """#selected leaves with pruning number <= w is bounded by the
    code-counting sum: sum_{k<=w} C(n, k)(d-1)^k — the same counting
    as Proposition 3, valid at every step."""
    tree = iid_boolean(d, n, 0.4, seed=seed)
    bound = sum(
        math.comb(n, k) * (d - 1) ** k for k in range(w + 1)
    )
    state = BooleanState(tree)
    while state.root_value() is None:
        batch = select_by_pruning_number(tree, state, w)
        assert len(batch) <= bound
        for leaf in batch:
            state.evaluate_leaf(leaf)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10_000),
)
def test_processor_usage_matches_code_counting(d, n, w, seed):
    tree = iid_boolean(d, n, 0.4, seed=seed)
    bound = sum(
        math.comb(n, k) * (d - 1) ** k for k in range(w + 1)
    )
    assert parallel_solve(tree, w).processors <= bound


@settings(max_examples=30, deadline=None)
@given(nested_minmax(), st.integers(min_value=0, max_value=2))
def test_minmax_selection_matches_definition(spec, width):
    """Budgeted-DFS selection equals the brute-force definition at
    every step of a full run (MIN/MAX side)."""
    tree = minmax_tree_from_spec(spec)
    state = AlphaBetaState(tree)
    while not state.is_finished(tree.root):
        batch = select_unfinished_by_pruning_number(tree, state, width)
        brute = [
            leaf
            for leaf in tree.iter_leaves()
            if leaf not in state.finished_value
            and state.in_pruned_tree(leaf)
            and state.pruning_number(leaf) <= width
        ]
        assert batch == brute
        for leaf in batch:
            state.finish_leaf(leaf)
        prune_to_fixpoint(state)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=10_000),
)
def test_minmax_selection_on_uniform_trees(d, n, seed):
    tree = iid_minmax(d, n, seed=seed)
    state = AlphaBetaState(tree)
    steps = 0
    while not state.is_finished(tree.root) and steps < 4:
        batch = select_unfinished_by_pruning_number(tree, state, 1)
        for leaf in batch:
            ref = state.pruning_number(leaf)
            assert ref <= 1
        for leaf in batch:
            state.finish_leaf(leaf)
        prune_to_fixpoint(state)
        steps += 1
