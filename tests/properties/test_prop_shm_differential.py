"""Differential properties: shm executor == serial arena engines.

The shared-memory executor promises bit-identical observable behaviour
to ``backend="arena"`` — same root value, same per-step degree
sequence, same per-step batches — regardless of worker count or chunk
size, because selection and cascades run the same serial code and only
the leaf *evaluation site* moves across processes.  The suite drives
random instances through real worker pools at p ∈ {1, 2, 4} and
through injected in-process executors across chunk sizes (the chunking
sweep would be prohibitively slow with per-example process spawns, and
chunk-splitting behaviour is identical either way — it lives in
``OracleRuntime._split``, above the executor).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parallel_solve, saturation_solve, team_solve
from repro.core.alphabeta import parallel_alpha_beta
from repro.core.shm import ShmOptions, ShmSession
from repro.core.shm.pool import _worker_init
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import iid_minmax, level_invariant_bias

from ..conftest import (
    boolean_tree_from_spec,
    minmax_tree_from_spec,
    nested_boolean,
    nested_minmax,
)


def _signature(result):
    return (result.value, result.trace.degrees, result.trace.batches)


def _thread_factory(spec, oracle):
    """In-process stand-in for the worker pool: same initializer,
    same shared-memory reads/writes, no fork cost."""
    return ThreadPoolExecutor(
        max_workers=2, initializer=_worker_init, initargs=(spec, oracle)
    )


def _inprocess_options(chunk_size=None):
    return ShmOptions(
        workers=2, chunk_size=chunk_size,
        executor_factory=_thread_factory,
    )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_real_worker_pools_identical_across_p(branching, height, seed):
    """Real process pools at p ∈ {1, 2, 4}: value and batches match
    the serial arena exactly, for SOLVE and alpha-beta."""
    tree = iid_boolean(
        branching, height, level_invariant_bias(branching), seed=seed
    )
    reference = parallel_solve(
        tree, 1, keep_batches=True, backend="arena"
    )
    for p in (1, 2, 4):
        shm = parallel_solve(
            tree, 1, keep_batches=True, backend="arena",
            executor="shm", shm_options=ShmOptions(workers=p),
        )
        assert _signature(shm) == _signature(reference), f"p={p}"

    mm = iid_minmax(branching, height, seed=seed)
    ab_reference = parallel_alpha_beta(
        mm, 1, keep_batches=True, backend="arena"
    )
    for p in (1, 2, 4):
        shm = parallel_alpha_beta(
            mm, 1, keep_batches=True, backend="arena",
            executor="shm", shm_options=ShmOptions(workers=p),
        )
        assert _signature(shm) == _signature(ab_reference), f"p={p}"


@settings(max_examples=40, deadline=None)
@given(
    nested_boolean(),
    st.integers(min_value=0, max_value=3),
    st.sampled_from([None, 1, 2, 7]),
)
def test_solve_chunk_sizes_identical(spec, width, chunk_size):
    tree = boolean_tree_from_spec(spec)
    reference = parallel_solve(
        tree, width, keep_batches=True, backend="arena"
    )
    shm = parallel_solve(
        tree, width, keep_batches=True, backend="arena",
        executor="shm", shm_options=_inprocess_options(chunk_size),
    )
    assert _signature(shm) == _signature(reference)


@settings(max_examples=30, deadline=None)
@given(nested_boolean(), st.sampled_from([None, 1, 3]))
def test_team_and_saturation_identical(spec, chunk_size):
    tree = boolean_tree_from_spec(spec)
    for processors in (1, 2, 5):
        reference = team_solve(
            tree, processors, keep_batches=True, backend="arena"
        )
        shm = team_solve(
            tree, processors, keep_batches=True, backend="arena",
            executor="shm", shm_options=_inprocess_options(chunk_size),
        )
        assert _signature(shm) == _signature(reference)
    reference = saturation_solve(
        tree, keep_batches=True, backend="arena"
    )
    shm = saturation_solve(
        tree, keep_batches=True, backend="arena",
        executor="shm", shm_options=_inprocess_options(chunk_size),
    )
    assert _signature(shm) == _signature(reference)


@settings(max_examples=30, deadline=None)
@given(
    nested_minmax(),
    st.integers(min_value=0, max_value=2),
    st.sampled_from([None, 1, 2]),
)
def test_alphabeta_identical(spec, width, chunk_size):
    tree = minmax_tree_from_spec(spec)
    reference = parallel_alpha_beta(
        tree, width, keep_batches=True, backend="arena"
    )
    shm = parallel_alpha_beta(
        tree, width, keep_batches=True, backend="arena",
        executor="shm", shm_options=_inprocess_options(chunk_size),
    )
    assert _signature(shm) == _signature(reference)


@settings(max_examples=15, deadline=None)
@given(nested_boolean(), st.integers(min_value=0, max_value=2))
def test_session_reuse_is_stable(spec, width):
    """One session, many runs: results do not drift as the pool warms
    up or as different engines share the same segments."""
    tree = boolean_tree_from_spec(spec)
    reference = parallel_solve(
        tree, width, keep_batches=True, backend="arena"
    )
    with ShmSession(tree, _inprocess_options()) as session:
        first = session.parallel_solve(width, keep_batches=True)
        second = session.parallel_solve(width, keep_batches=True)
        saturated = session.saturation_solve(keep_batches=True)
    assert _signature(first) == _signature(reference)
    assert _signature(second) == _signature(reference)
    sat_reference = saturation_solve(
        tree, keep_batches=True, backend="arena"
    )
    assert _signature(saturated) == _signature(sat_reference)
