"""Unit tests for node-expansion alpha-beta."""

import pytest

from repro.core.alphabeta import alpha_beta
from repro.core.nodeexpansion import (
    n_parallel_alpha_beta,
    n_sequential_alpha_beta,
)
from repro.errors import ModelViolationError
from repro.trees import ExplicitTree, exact_value, lazy_view
from repro.trees.generators import iid_minmax, iid_minmax_integers
from repro.types import TreeKind


class TestValues:
    @pytest.mark.parametrize("seed", range(10))
    def test_sequential_matches_oracle(self, seed):
        t = iid_minmax(2 + seed % 2, 4, seed=seed)
        assert n_sequential_alpha_beta(t).value == exact_value(t)

    @pytest.mark.parametrize("width", [0, 1, 2])
    def test_parallel_matches_oracle(self, width):
        for seed in range(4):
            t = iid_minmax_integers(2, 5, seed=seed, num_values=4)
            assert n_parallel_alpha_beta(t, width).value == \
                exact_value(t)

    def test_single_leaf(self):
        t = ExplicitTree([()], {0: 3.0}, kind=TreeKind.MINMAX)
        assert n_sequential_alpha_beta(t).value == 3.0


class TestSearchTree:
    @pytest.mark.parametrize("seed", range(10))
    def test_sequential_expands_classical_leaf_set(self, seed):
        # The leaves the node-expansion version evaluates are exactly
        # the classical left-to-right alpha-beta leaf set.
        t = iid_minmax(2, 5, seed=seed)
        expanded_leaves = {
            v for v in n_sequential_alpha_beta(t).evaluated
            if t.is_leaf(v)
        }
        assert expanded_leaves == set(alpha_beta(t).evaluated)

    def test_expansions_exceed_leaf_evaluations(self):
        t = iid_minmax(2, 6, seed=1)
        res = n_sequential_alpha_beta(t)
        leaves = sum(1 for v in res.evaluated if t.is_leaf(v))
        assert res.total_work > leaves  # internal nodes also expanded

    def test_wider_never_slower(self):
        t = iid_minmax(2, 7, seed=2)
        steps = [
            n_parallel_alpha_beta(t, w).num_steps for w in range(3)
        ]
        assert all(a >= b for a, b in zip(steps, steps[1:]))

    def test_width1_processors_bound(self):
        n = 7
        t = iid_minmax(2, n, seed=3)
        assert n_parallel_alpha_beta(t, 1).processors <= n + 1

    def test_lazy_view_only_generates_visited(self):
        t = iid_minmax(2, 8, seed=4)
        view = lazy_view(t)
        n_sequential_alpha_beta(view)
        # Pruning means strictly fewer expansions than the full tree.
        assert view.expansions < t.num_nodes()

    def test_invalid_width(self):
        from repro.core.nodeexpansion import NAlphaBetaWidthPolicy

        with pytest.raises(ValueError):
            NAlphaBetaWidthPolicy(-1)

    def test_empty_policy_raises(self):
        from repro.core.nodeexpansion import run_expansion_minmax

        t = iid_minmax(2, 3, seed=0)
        with pytest.raises(ModelViolationError):
            run_expansion_minmax(t, lambda tree, st: [])
