"""Unit tests for the node-expansion model (Boolean)."""

import numpy as np
import pytest

from repro.core import sequential_solve
from repro.core.nodeexpansion import (
    ExpansionState,
    NSequentialPolicy,
    NWidthPolicy,
    n_parallel_solve,
    n_sequential_solve,
    run_expansion,
    select_frontier_by_pruning_number,
    select_leftmost_frontier,
)
from repro.analysis import skeleton_of
from repro.errors import ModelViolationError
from repro.trees import ExplicitTree, exact_value, lazy_view
from repro.trees.generators import iid_boolean


def brute_force_frontier(tree, state, width):
    """Frontier nodes with pruning number <= width, by definition."""
    out = []
    stack = [tree.root]
    order = []
    while stack:
        node = stack.pop()
        order.append(node)
        if node in state.expanded:
            stack.extend(reversed(tree.children(node)))
    return [
        n for n in order
        if state.is_frontier(n) and state.pruning_number(n) <= width
    ]


class TestExpansionState:
    def test_root_is_frontier(self):
        t = iid_boolean(2, 3, 0.5, seed=0)
        st = ExpansionState(t)
        assert st.is_frontier(t.root)

    def test_expand_leaf_determines(self):
        t = ExplicitTree.from_nested([1, 0])
        st = ExpansionState(t)
        st.expand(0)
        st.expand(1)  # leaf value 1 absorbs the NOR root
        assert st.value[1] == 1
        assert st.value[0] == 0

    def test_double_expand_rejected(self):
        t = iid_boolean(2, 2, 0.5, seed=0)
        st = ExpansionState(t)
        st.expand(0)
        with pytest.raises(ModelViolationError):
            st.expand(0)

    def test_all_children_zero_determines(self):
        t = ExplicitTree.from_nested([0, 0])
        st = ExpansionState(t)
        st.expand(0)
        st.expand(1)
        assert 0 not in st.value
        st.expand(2)
        assert st.value[0] == 1

    def test_unexpanded_internal_never_determined(self):
        # Even with the tree fully known to us, the model only
        # determines from generated information.
        t = ExplicitTree.from_nested([[1, 1], 0])
        st = ExpansionState(t)
        st.expand(0)
        assert 1 not in st.value  # its children are not generated


class TestSelection:
    @pytest.mark.parametrize("width", [0, 1, 2])
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, width, seed):
        rng = np.random.default_rng(seed)
        t = iid_boolean(2, 4, 0.4, seed=seed)
        st = ExpansionState(t)
        for _ in range(6):
            frontier = select_frontier_by_pruning_number(t, st, width)
            brute = brute_force_frontier(t, st, width)
            assert frontier == brute
            if not frontier:
                break
            st.expand(frontier[int(rng.integers(len(frontier)))])
            if t.root in st.value:
                break

    def test_leftmost_frontier_initially_root(self):
        t = iid_boolean(2, 3, 0.5, seed=1)
        st = ExpansionState(t)
        assert select_leftmost_frontier(t, st, 1) == [t.root]

    def test_leftmost_after_root_expansion(self):
        t = iid_boolean(2, 3, 0.5, seed=1)
        st = ExpansionState(t)
        st.expand(0)
        assert select_leftmost_frontier(t, st, 2) == [1, 2]


class TestAlgorithms:
    @pytest.mark.parametrize("seed", range(8))
    def test_values_match_oracle(self, seed):
        t = iid_boolean(2 + seed % 2, 4, 0.5, seed=seed)
        assert n_sequential_solve(t).value == exact_value(t)
        assert n_parallel_solve(t, 1).value == exact_value(t)

    def test_sequential_expands_exactly_the_skeleton(self):
        # Section 5: H_T is precisely the set of nodes N-Sequential
        # SOLVE expands.
        for seed in range(6):
            t = iid_boolean(2, 6, 0.4, seed=seed)
            res = n_sequential_solve(t)
            skel = skeleton_of(t)
            assert res.total_work == skel.num_nodes()

    def test_sequential_leaves_match_leaf_model(self):
        for seed in range(6):
            t = iid_boolean(3, 4, 0.3, seed=seed)
            expanded_leaves = [
                v for v in n_sequential_solve(t).evaluated
                if t.is_leaf(v)
            ]
            assert expanded_leaves == sequential_solve(t).evaluated

    def test_width0_equals_sequential(self):
        t = iid_boolean(2, 6, 0.5, seed=9)
        a = run_expansion(t, NWidthPolicy(0))
        b = run_expansion(t, NSequentialPolicy())
        assert a.evaluated == b.evaluated

    def test_wider_never_slower(self):
        t = iid_boolean(2, 8, 0.45, seed=10)
        steps = [n_parallel_solve(t, w).num_steps for w in range(3)]
        assert all(a >= b for a, b in zip(steps, steps[1:]))

    def test_width1_processors_at_most_n_plus_1(self):
        n = 8
        t = iid_boolean(2, n, 0.5, seed=11)
        assert n_parallel_solve(t, 1).processors <= n + 1

    def test_lazy_tree_counts_match(self):
        t = iid_boolean(2, 7, 0.4, seed=12)
        view = lazy_view(t)
        res = n_sequential_solve(view)
        # The engine's work count equals the lazy tree's expansion
        # counter: the model generated exactly what it was charged for.
        assert res.total_work == view.expansions

    def test_empty_policy_raises(self):
        t = iid_boolean(2, 3, 0.5, seed=0)
        with pytest.raises(ModelViolationError):
            run_expansion(t, lambda tree, st: [])

    def test_single_leaf_tree(self):
        t = ExplicitTree([()], {0: 1})
        res = n_sequential_solve(t)
        assert res.value == 1
        assert res.num_steps == 1
