"""Unit tests for the randomized R-* algorithms."""

import pytest

from repro.core.nodeexpansion import n_sequential_solve
from repro.core.randomized import (
    ExpectationEstimate,
    estimate_expectation,
    r_parallel_alpha_beta,
    r_parallel_solve,
    r_sequential_alpha_beta,
    r_sequential_solve,
)
from repro.trees import exact_value
from repro.trees.generators import (
    iid_boolean,
    iid_minmax,
    sequential_worst_case,
)


class TestValueInvariance:
    @pytest.mark.parametrize("seed", range(8))
    def test_solve_value_invariant(self, seed):
        t = iid_boolean(2, 6, 0.5, seed=3)
        assert r_sequential_solve(t, seed).value == exact_value(t)
        assert r_parallel_solve(t, 1, seed=seed).value == exact_value(t)

    @pytest.mark.parametrize("seed", range(6))
    def test_alphabeta_value_invariant(self, seed):
        t = iid_minmax(2, 5, seed=4)
        assert r_sequential_alpha_beta(t, seed).value == exact_value(t)
        assert r_parallel_alpha_beta(t, 1, seed=seed).value == \
            exact_value(t)


class TestRandomizationEffects:
    def test_different_seeds_different_orders(self):
        t = iid_boolean(2, 6, 0.5, seed=5)
        a = r_sequential_solve(t, 0).evaluated
        b = r_sequential_solve(t, 1).evaluated
        assert a != b  # overwhelmingly likely

    def test_beats_deterministic_on_worst_case(self):
        # The all-leaves-forced instance is worst-case for the
        # *left-to-right* order only (its absorbing witnesses sit in
        # the last child); random child order finds them early, so the
        # randomized algorithm beats the deterministic one in
        # expectation — the phenomenon Theorem 5 formalises.
        t = sequential_worst_case(2, 8)
        det = n_sequential_solve(t).num_steps
        est = estimate_expectation(r_sequential_solve, t,
                                   seeds=range(5))
        assert est.mean_steps < det

    def test_randomized_helps_on_one_sided_instance(self):
        # Instance whose single absorbing witness sits on the right:
        # left-to-right reads everything, random order halves it.
        from repro.trees import ExplicitTree

        spec = [[0, 0, 0, 1]] * 2
        t = ExplicitTree.from_nested(spec)
        det = n_sequential_solve(t).num_steps
        est = estimate_expectation(r_sequential_solve, t,
                                   seeds=range(30))
        assert est.mean_steps < det


class TestEstimation:
    def test_estimate_statistics(self):
        t = iid_boolean(2, 5, 0.4, seed=6)
        est = estimate_expectation(r_parallel_solve, t, seeds=range(8),
                                   width=1)
        assert isinstance(est, ExpectationEstimate)
        assert est.num_samples == 8
        assert est.mean_work >= est.mean_steps
        assert est.max_processors >= 1
        assert est.std_steps >= 0

    def test_single_sample_std(self):
        t = iid_boolean(2, 4, 0.4, seed=7)
        est = estimate_expectation(r_sequential_solve, t, seeds=[3])
        assert est.std_steps == 0.0
