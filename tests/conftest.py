"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st

# CI runs with HYPOTHESIS_PROFILE=ci: fully deterministic example
# generation (fixed derivation from the test body, no timing-dependent
# deadline failures), so a red property job is always reproducible
# locally by exporting the same variable.
hypothesis_settings.register_profile(
    "ci", derandomize=True, deadline=None, print_blob=True
)
_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    hypothesis_settings.load_profile(_profile)

from repro.trees import ExplicitTree
from repro.types import Gate, TreeKind


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------
def nested_boolean(max_depth: int = 4, max_branch: int = 3):
    """Nested-list specs of Boolean trees (leaves are 0/1)."""
    return st.recursive(
        st.integers(min_value=0, max_value=1),
        lambda children: st.lists(children, min_size=1,
                                  max_size=max_branch),
        max_leaves=24,
    )


def nested_minmax(max_branch: int = 3):
    """Nested-list specs of MIN/MAX trees (float leaves)."""
    finite = st.floats(
        min_value=-100, max_value=100, allow_nan=False,
        allow_infinity=False,
    )
    return st.recursive(
        finite,
        lambda children: st.lists(children, min_size=1,
                                  max_size=max_branch),
        max_leaves=20,
    )


def boolean_tree_from_spec(spec, gates=Gate.NOR) -> ExplicitTree:
    if not isinstance(spec, (list, tuple)):
        spec = [spec]  # promote a bare leaf to a one-child root
    return ExplicitTree.from_nested(spec, kind=TreeKind.BOOLEAN,
                                    gates=gates)


def minmax_tree_from_spec(spec) -> ExplicitTree:
    if not isinstance(spec, (list, tuple)):
        spec = [spec]
    return ExplicitTree.from_nested(spec, kind=TreeKind.MINMAX)


# ---------------------------------------------------------------------------
# per-test timeout
# ---------------------------------------------------------------------------
# CI passes --timeout/--timeout-method to pytest-timeout (a dev
# extra).  Environments without the plugin fall back to a SIGALRM
# watchdog so a hung test (the exact failure mode fault injection
# exists to provoke) can never wedge the suite.  Override the budget
# with REPRO_TEST_TIMEOUT=<seconds>; 0 disables the fallback.
_FALLBACK_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _per_test_timeout(request):
    if (
        _FALLBACK_TIMEOUT <= 0
        or request.config.pluginmanager.hasplugin("timeout")
        or not hasattr(signal, "SIGALRM")
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {_FALLBACK_TIMEOUT}s fallback timeout "
            f"(REPRO_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_FALLBACK_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def rng():
    return np.random.default_rng(12345)
