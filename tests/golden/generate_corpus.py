"""Regenerate the golden-master corpus under ``tests/golden/corpus/``.

Run from the repository root::

    PYTHONPATH=src python tests/golden/generate_corpus.py

Each corpus instance is serialised through :mod:`repro.trees.io`
(uniform trees as ``.npz``, explicit trees as ``.json``) and
``manifest.json`` records, per instance and per engine, the expected
``val(root)`` and model step count.  The replay test
(``test_golden_corpus.py``) diffs every engine against these frozen
outputs, so *any* behavioural drift in an engine — intended or not —
shows up as a golden failure and must be re-frozen deliberately by
re-running this script.

The instance set mixes i.i.d. uniform trees (both kinds), adversarial
worst cases, near-uniform explicit trees and hand-built irregular
shapes, so the corpus exercises pruning, tie-handling and non-uniform
arity paths.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

from repro.serve.engines import run_algorithm  # noqa: E402
from repro.trees import ExplicitTree  # noqa: E402
from repro.trees.generators import (  # noqa: E402
    iid_boolean,
    iid_minmax,
    iid_minmax_integers,
)
from repro.trees.generators.adversarial import (  # noqa: E402
    alpha_beta_worst_case,
    sequential_worst_case,
    team_solve_hard_instance,
)
from repro.trees.generators.iid import level_invariant_bias  # noqa: E402
from repro.trees.generators.near_uniform import (  # noqa: E402
    near_uniform_boolean,
)
from repro.trees.io import save_tree  # noqa: E402
from repro.types import TreeKind  # noqa: E402

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

#: engine name -> params, replayed for every Boolean instance.
BOOLEAN_ENGINES = {
    "sequential": {},
    "team": {"processors": 4},
    "parallel": {"width": 1},
    "parallel_w2": {"width": 2},
    "nsequential": {},
    "nparallel": {"width": 1},
    "machine": {},
}

#: engine name -> params, replayed for every MIN/MAX instance.
MINMAX_ENGINES = {
    "minimax": {},
    "alphabeta": {},
    "sequential_ab": {},
    "parallel_ab": {"width": 1},
    "nsequential_ab": {},
    "nparallel_ab": {"width": 1},
    "scout": {},
    "sss": {},
}

#: golden engine label -> serve-registry algorithm name.
ALGO_OF = {"parallel_w2": "parallel"}


def build_instances():
    """The frozen instance list: (name, tree) pairs."""
    phi = level_invariant_bias(2)
    instances = [
        # i.i.d. Boolean uniform trees across shapes and biases.
        ("bool_iid_d2h3", iid_boolean(2, 3, 0.5, seed=101)),
        ("bool_iid_d2h4", iid_boolean(2, 4, phi, seed=102)),
        ("bool_iid_d2h5", iid_boolean(2, 5, phi, seed=103)),
        ("bool_iid_d3h3", iid_boolean(3, 3, 0.4, seed=104)),
        ("bool_iid_d4h2", iid_boolean(4, 2, 0.6, seed=105)),
        ("bool_iid_d2h6", iid_boolean(2, 6, phi, seed=106)),
        # Adversarial Boolean instances.
        ("bool_seq_worst_d2h4", sequential_worst_case(2, 4)),
        ("bool_seq_worst_d3h3", sequential_worst_case(3, 3, root_value=0)),
        ("bool_team_hard_d2h4", team_solve_hard_instance(2, 4)),
        # Near-uniform and hand-built explicit Boolean trees.
        ("bool_near_uniform", near_uniform_boolean(
            2, 4, alpha=0.5, beta=1.0, p=phi, seed=107)),
        ("bool_irregular_a", ExplicitTree.from_nested(
            [[0, [1, 0]], [[1, 1, 0], 1], 0])),
        ("bool_irregular_b", ExplicitTree.from_nested(
            [[[0, 1], [1, [0, 0, 1]]], [1, [0, 1]]])),
        # i.i.d. MIN/MAX uniform trees (continuous and tie-heavy).
        ("mm_iid_d2h4", iid_minmax(2, 4, seed=201)),
        ("mm_iid_d2h5", iid_minmax(2, 5, seed=202)),
        ("mm_iid_d3h3", iid_minmax(3, 3, seed=203)),
        ("mm_ties_d2h4", iid_minmax_integers(2, 4, seed=204)),
        ("mm_ties_d3h3", iid_minmax_integers(3, 3, seed=205, num_values=3)),
        # Adversarial MIN/MAX instance.
        ("mm_ab_worst_d2h4", alpha_beta_worst_case(2, 4)),
        # Hand-built irregular MIN/MAX trees.
        ("mm_irregular_a", ExplicitTree.from_nested(
            [[3.0, [1.0, 4.0]], [[1.5, 9.0], 2.5], 5.0],
            kind=TreeKind.MINMAX)),
        ("mm_irregular_b", ExplicitTree.from_nested(
            [[[2.0, 7.0], 1.0], [[8.0, 2.0], [3.0, 3.0]]],
            kind=TreeKind.MINMAX)),
    ]
    return instances


def _is_binary_uniform(tree) -> bool:
    return (
        type(tree).__name__ == "UniformTree" and tree.branching == 2
    )


def freeze(tree, engines):
    """Expected {engine: {value, steps, work}} for one instance."""
    expected = {}
    for name, params in engines.items():
        # The Section-7 machine implementation is binary-NOR only.
        if name == "machine" and not _is_binary_uniform(tree):
            continue
        algo = ALGO_OF.get(name, name)
        value, steps, work = run_algorithm(algo, tree, params)
        expected[name] = {"value": value, "steps": steps, "work": work}
    return expected


def main() -> int:
    os.makedirs(CORPUS_DIR, exist_ok=True)
    manifest = []
    for name, tree in build_instances():
        is_boolean = tree.kind is TreeKind.BOOLEAN
        engines = BOOLEAN_ENGINES if is_boolean else MINMAX_ENGINES
        ext = ".npz" if type(tree).__name__ == "UniformTree" else ".json"
        filename = name + ext
        save_tree(tree, os.path.join(CORPUS_DIR, filename))
        manifest.append({
            "name": name,
            "file": filename,
            "kind": tree.kind.value,
            "leaves": tree.num_leaves(),
            "expected": freeze(tree, engines),
        })
        print(f"froze {name}: {len(manifest[-1]['expected'])} engines")
    with open(os.path.join(CORPUS_DIR, "manifest.json"), "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(manifest)} instances to {CORPUS_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
