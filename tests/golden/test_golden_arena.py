"""Golden-master replay on the arena backend.

The frozen corpus in ``corpus/manifest.json`` was recorded with the
default (incremental) frontier backend.  The arena backend promises
bit-compatible observable behaviour, so every backend-capable cell —
team, parallel SOLVE and the alpha-beta pair — must replay to exactly
the same ``val(root)``, step count and total work with
``backend="arena"``, without re-freezing anything.
"""

from __future__ import annotations

import pytest

from repro.serve.engines import run_algorithm

from .test_golden_corpus import ENGINE_PARAMS, MANIFEST, _load_tree

#: Golden engine labels whose serve adapters accept a backend param.
BACKEND_CAPABLE = (
    "team", "parallel", "parallel_w2", "sequential_ab", "parallel_ab",
)

CELLS = [
    pytest.param(entry, engine, id=f"{entry['name']}-{engine}-arena")
    for entry in MANIFEST
    for engine in sorted(entry["expected"])
    if engine in BACKEND_CAPABLE
]


def test_arena_cells_are_populated():
    assert len(CELLS) >= 50  # every backend-capable engine, ~20 trees


@pytest.mark.parametrize("entry,engine", CELLS)
def test_golden_replay_arena(entry, engine):
    tree = _load_tree(entry)
    algo, params = ENGINE_PARAMS[engine]
    value, steps, work = run_algorithm(
        algo, tree, dict(params, backend="arena")
    )
    expected = entry["expected"][engine]
    assert value == expected["value"], (
        f"{entry['name']}/{engine}: arena value drifted"
    )
    assert steps == expected["steps"], (
        f"{entry['name']}/{engine}: arena step count drifted"
    )
    assert work == expected["work"], (
        f"{entry['name']}/{engine}: arena total work drifted"
    )
