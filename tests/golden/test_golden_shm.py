"""Golden-master replay through the shared-memory executor.

Every backend-capable cell of the frozen corpus — team, parallel
SOLVE and the alpha-beta pair over all 20 trees — must replay to
exactly the frozen ``val(root)``, step count and total work with
``backend="arena", executor="shm"``, with real OS worker processes
evaluating the leaf batches.  Nothing is re-frozen: the shm executor
answers to the same manifest the serial engines froze.

The crash test is the fault-tolerance half of the contract: a worker
killed mid-step (a real ``os._exit``, not a raised exception) must be
absorbed by the runtime's retry/rebuild machinery and still produce
the exact fault-free frozen values.
"""

from __future__ import annotations

import os

import pytest

from repro.core.shm import ShmOptions, ShmSession
from repro.serve.engines import run_algorithm

from .test_golden_corpus import ENGINE_PARAMS, MANIFEST, _load_tree

#: Golden engine labels whose serve adapters accept backend/executor.
BACKEND_CAPABLE = (
    "team", "parallel", "parallel_w2", "sequential_ab", "parallel_ab",
)

CELLS = [
    pytest.param(entry, engine, id=f"{entry['name']}-{engine}-shm")
    for entry in MANIFEST
    for engine in sorted(entry["expected"])
    if engine in BACKEND_CAPABLE
]


def test_shm_cells_are_populated():
    assert len(CELLS) >= 50  # every backend-capable engine, ~20 trees


@pytest.mark.parametrize("entry,engine", CELLS)
def test_golden_replay_shm(entry, engine):
    tree = _load_tree(entry)
    algo, params = ENGINE_PARAMS[engine]
    value, steps, work = run_algorithm(
        algo, tree, dict(params, backend="arena", executor="shm")
    )
    expected = entry["expected"][engine]
    assert value == expected["value"], (
        f"{entry['name']}/{engine}: shm value drifted"
    )
    assert steps == expected["steps"], (
        f"{entry['name']}/{engine}: shm step count drifted"
    )
    assert work == expected["work"], (
        f"{entry['name']}/{engine}: shm total work drifted"
    )


class _CrashOnce:
    """Kills the evaluating worker process once, then behaves."""

    def __init__(self, marker: str) -> None:
        self.marker = marker

    def __call__(self, value: float, index: int) -> float:
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write("crashed")
            os._exit(1)
        return value


#: Boolean corpus entries (the crash test drives parallel SOLVE).
_BOOLEAN = [e for e in MANIFEST if "parallel" in e["expected"]]


@pytest.mark.parametrize(
    "name", [_BOOLEAN[0]["name"], _BOOLEAN[-1]["name"]]
)
def test_crash_mid_step_recovers_frozen_value(name, tmp_path):
    """A worker death mid-step changes nothing observable: after the
    retry (and pool rebuild) the run ends on the frozen values."""
    entry = next(e for e in MANIFEST if e["name"] == name)
    tree = _load_tree(entry)
    expected = entry["expected"]["parallel"]
    oracle = _CrashOnce(str(tmp_path / f"{name}-marker"))
    with ShmSession(
        tree,
        ShmOptions(workers=2, oracle=oracle, backoff_seconds=0.01),
    ) as session:
        result = session.parallel_solve(1)
        assert session.pool.stats.pool_restarts >= 1, (
            "the crash was supposed to break the pool"
        )
    assert float(result.value) == expected["value"]
    assert result.num_steps == expected["steps"]
    assert result.total_work == expected["work"]
