"""Golden-master replay: every engine against the frozen corpus.

``corpus/manifest.json`` records, for ~20 serialized instances, the
expected ``val(root)``, step count and total work of every applicable
engine.  This test replays each (instance, engine) cell and compares
exactly — a failure means an engine's observable behaviour changed.
If the change is intentional, re-freeze deliberately with::

    PYTHONPATH=src python tests/golden/generate_corpus.py

and review the manifest diff like any other code change.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.serve.engines import run_algorithm
from repro.trees.io import load_explicit, load_uniform

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

#: golden engine label -> (serve-registry algorithm, params).
ENGINE_PARAMS = {
    "sequential": ("sequential", {}),
    "team": ("team", {"processors": 4}),
    "parallel": ("parallel", {"width": 1}),
    "parallel_w2": ("parallel", {"width": 2}),
    "nsequential": ("nsequential", {}),
    "nparallel": ("nparallel", {"width": 1}),
    "machine": ("machine", {}),
    "minimax": ("minimax", {}),
    "alphabeta": ("alphabeta", {}),
    "sequential_ab": ("sequential_ab", {}),
    "parallel_ab": ("parallel_ab", {"width": 1}),
    "nsequential_ab": ("nsequential_ab", {}),
    "nparallel_ab": ("nparallel_ab", {"width": 1}),
    "scout": ("scout", {}),
    "sss": ("sss", {}),
}


def _load_manifest():
    with open(os.path.join(CORPUS_DIR, "manifest.json")) as fh:
        return json.load(fh)


MANIFEST = _load_manifest()

CELLS = [
    pytest.param(entry, engine, id=f"{entry['name']}-{engine}")
    for entry in MANIFEST
    for engine in sorted(entry["expected"])
]


def _load_tree(entry):
    path = os.path.join(CORPUS_DIR, entry["file"])
    if entry["file"].endswith(".npz"):
        return load_uniform(path)
    return load_explicit(path)


def test_corpus_is_populated():
    assert len(MANIFEST) >= 20
    assert len(CELLS) >= 100  # every engine covered across instances
    covered = {engine for entry in MANIFEST for engine in entry["expected"]}
    assert covered == set(ENGINE_PARAMS)


@pytest.mark.parametrize("entry,engine", CELLS)
def test_golden_replay(entry, engine):
    tree = _load_tree(entry)
    algo, params = ENGINE_PARAMS[engine]
    value, steps, work = run_algorithm(algo, tree, params)
    expected = entry["expected"][engine]
    assert value == expected["value"], (
        f"{entry['name']}/{engine}: value drifted"
    )
    assert steps == expected["steps"], (
        f"{entry['name']}/{engine}: step count drifted"
    )
    assert work == expected["work"], (
        f"{entry['name']}/{engine}: total work drifted"
    )
