"""Runner behaviour: file walking, logical paths, suppression, R0."""

from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source, parse_suppressions
from repro.lint.runner import logical_path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def _write_fixture_tree(root: Path) -> None:
    (root / "core").mkdir(parents=True)
    (root / "simulator").mkdir()
    (root / "core" / "bad_counter.py").write_text(
        "def run(tree):\n"
        "    total_work = 0\n"
        "    total_work += 1\n"
        "    return total_work\n"
    )
    (root / "simulator" / "bad_payload.py").write_text(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class PingMessage:\n"
        "    node: int\n"
    )
    (root / "clean.py").write_text("VALUE = 1\n")


def test_fixture_tree_scoping(tmp_path):
    _write_fixture_tree(tmp_path)
    findings = lint_paths([tmp_path])
    assert sorted(f.rule for f in findings) == ["R1", "R4"]
    by_rule = {f.rule: f for f in findings}
    assert by_rule["R1"].path.endswith("core/bad_counter.py")
    assert by_rule["R1"].line == 3
    assert by_rule["R4"].path.endswith("simulator/bad_payload.py")


def test_single_file_argument(tmp_path):
    _write_fixture_tree(tmp_path)
    findings = lint_paths([tmp_path / "core" / "bad_counter.py"])
    # Supplying the file directly keeps the parent-derived logical
    # path, so core/ scoping still applies.
    assert [f.rule for f in findings] == ["R1"]


def test_logical_path_strips_repro_package_prefix():
    file = SRC_REPRO / "core" / "sequential_solve.py"
    assert logical_path(file, REPO_ROOT / "src") == (
        "core/sequential_solve.py"
    )
    assert logical_path(file, SRC_REPRO) == "core/sequential_solve.py"


def test_syntax_error_reported_as_r0(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = lint_paths([tmp_path])
    assert [f.rule for f in findings] == ["R0"]
    assert "syntax error" in findings[0].message


def test_non_utf8_file_reported_as_r0_not_crash(tmp_path):
    bad = tmp_path / "latin1.py"
    bad.write_bytes(b"# caf\xe9\nVALUE = 1\n")
    findings = lint_paths([tmp_path])
    assert [f.rule for f in findings] == ["R0"]
    assert "not valid UTF-8" in findings[0].message
    assert findings[0].path.endswith("latin1.py")


def test_non_utf8_file_does_not_poison_the_rest_of_the_run(tmp_path):
    (tmp_path / "bad.py").write_bytes(b"\xff\xfe\x00garbage")
    _write_fixture_tree(tmp_path)
    findings = lint_paths([tmp_path])
    assert sorted(f.rule for f in findings) == ["R0", "R1", "R4"]


def test_rule_subset_filter(tmp_path):
    _write_fixture_tree(tmp_path)
    findings = lint_paths([tmp_path], rule_names=["R4"])
    assert [f.rule for f in findings] == ["R4"]


def test_unknown_rule_name_raises():
    with pytest.raises(KeyError):
        lint_paths([SRC_REPRO / "errors.py"], rule_names=["R99"])


# -- suppressions -----------------------------------------------------------

def test_line_suppression_silences_only_that_line():
    src = (
        "def run(tree):\n"
        "    work = 0\n"
        "    work += 1  # lint: disable=R1\n"
        "    work += 1\n"
    )
    findings = lint_source(src, "core/x.py")
    assert [(f.rule, f.line) for f in findings] == [("R1", 4)]


def test_file_wide_suppression():
    src = (
        "# lint: file-disable=R1\n"
        "def run(tree):\n"
        "    work = 0\n"
        "    work += 1\n"
        "    work += 1\n"
    )
    assert lint_source(src, "core/x.py") == []


def test_disable_all_wildcard():
    src = "import random  # lint: disable=all\n"
    assert lint_source(src, "core/x.py") == []


def test_malformed_directive_is_reported_not_ignored():
    src = "import random  # lint: disable R2\n"
    findings = lint_source(src, "core/x.py")
    # The typo'd directive suppresses nothing and is itself flagged.
    assert sorted(f.rule for f in findings) == ["R0", "R2"]


def test_r0_cannot_be_suppressed():
    src = "# lint: disable=bogus rule\n# lint: file-disable=all\n"
    findings = lint_source(src, "core/x.py")
    assert [f.rule for f in findings] == ["R0"]


def test_directive_inside_string_is_not_a_directive():
    src = 'BANNER = "# lint: disable=nonsense"\n'
    assert lint_source(src, "core/x.py") == []


def test_parse_suppressions_table():
    table = parse_suppressions(
        "x = 1  # lint: disable=R1,R5\n# lint: file-disable=R3\n"
    )
    assert table.is_suppressed("R1", 1)
    assert table.is_suppressed("R5", 1)
    assert not table.is_suppressed("R1", 2)
    assert table.is_suppressed("R3", 99)


# -- the self-clean property ------------------------------------------------

def test_repo_source_tree_is_lint_clean():
    # The default rule set now includes the project-wide rules
    # R8-R11, so this gate covers them too.
    findings = lint_paths([SRC_REPRO])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_source_tree_is_clean_under_flow_rules_alone():
    # The acceptance gate for the dataflow rules, run in isolation so
    # a regression cannot hide behind an unrelated R1-R7 failure.
    findings = lint_paths(
        [SRC_REPRO], rule_names=["R8", "R9", "R10", "R11"]
    )
    assert findings == [], "\n".join(f.render() for f in findings)
