"""Baseline round-trips and SARIF 2.1.0 export validity."""

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.findings import Finding, Severity
from repro.lint.flow import (
    load_baseline,
    render_sarif,
    sarif_report,
    subtract_baseline,
    validate_sarif,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _finding(rule="R8", path="core/x.py", line=3, message="boom"):
    return Finding(
        rule=rule, severity=Severity.ERROR, path=path, line=line,
        col=1, message=message,
    )


# -- baseline ---------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    findings = [_finding(), _finding(rule="R9", message="race")]
    snapshot = tmp_path / "baseline.json"
    assert write_baseline(findings, snapshot) == 2
    baseline = load_baseline(snapshot)
    new, suppressed = subtract_baseline(findings, baseline)
    assert new == [] and suppressed == 2


def test_baseline_ignores_line_shifts_but_not_new_findings(tmp_path):
    snapshot = tmp_path / "baseline.json"
    write_baseline([_finding(line=3)], snapshot)
    baseline = load_baseline(snapshot)
    # Same finding moved to another line: still absorbed.
    new, suppressed = subtract_baseline(
        [_finding(line=99)], baseline
    )
    assert new == [] and suppressed == 1
    # A different message is a new finding.
    new, suppressed = subtract_baseline(
        [_finding(message="other")], baseline
    )
    assert len(new) == 1 and suppressed == 0


def test_baseline_counts_duplicates(tmp_path):
    snapshot = tmp_path / "baseline.json"
    write_baseline([_finding(), _finding()], snapshot)
    baseline = load_baseline(snapshot)
    three = [_finding(), _finding(), _finding()]
    new, suppressed = subtract_baseline(three, baseline)
    # Two absorbed, the third is new.
    assert len(new) == 1 and suppressed == 2


@pytest.mark.parametrize("content", [
    "not json",
    '{"version": 99, "findings": []}',
    '{"version": 1}',
    '{"version": 1, "findings": [{"rule": "R8"}]}',
])
def test_malformed_baseline_raises(tmp_path, content):
    snapshot = tmp_path / "baseline.json"
    snapshot.write_text(content)
    with pytest.raises(ValueError):
        load_baseline(snapshot)


def test_committed_baseline_covers_tests_and_benchmarks():
    # The snapshot CI lints against must stay in sync with reality:
    # no finding outside it, no stale surplus entries hiding drift.
    baseline = load_baseline(REPO_ROOT / ".lint-baseline.json")
    findings = lint_paths(
        [REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    )
    new, suppressed = subtract_baseline(findings, baseline)
    assert new == [], "\n".join(f.render() for f in new)
    assert suppressed == sum(baseline.values()), (
        "baseline has stale entries; regenerate with --write-baseline"
    )


# -- SARIF ------------------------------------------------------------------

def test_sarif_document_shape():
    findings = [
        _finding(),
        _finding(rule="R0", path="core/broken.py", message="syntax"),
    ]
    document = sarif_report(findings)
    assert validate_sarif(document) == []
    run = document["runs"][0]
    ids = [d["id"] for d in run["tool"]["driver"]["rules"]]
    # R0 plus every registered rule, R10/R11 after R9.
    assert ids[0] == "R0"
    assert ids.index("R9") < ids.index("R10") < ids.index("R11")
    result = run["results"][0]
    assert result["ruleId"] == "R8"
    assert ids[result["ruleIndex"]] == "R8"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "core/x.py"
    assert location["region"] == {"startLine": 3, "startColumn": 1}


def test_sarif_empty_run_is_valid():
    document = sarif_report([])
    assert validate_sarif(document) == []
    assert document["runs"][0]["results"] == []


def test_render_sarif_is_stable_json():
    findings = [_finding()]
    text = render_sarif(findings)
    assert json.loads(text) == sarif_report(findings)
    assert render_sarif(findings) == text


def test_validate_sarif_catches_corruption():
    document = sarif_report([_finding()])
    document["version"] = "2.0.0"
    document["runs"][0]["results"][0]["level"] = "fatal"
    document["runs"][0]["results"][0]["ruleIndex"] = 999
    problems = validate_sarif(document)
    assert len(problems) == 3
    assert any("version" in p for p in problems)
    assert any("level" in p for p in problems)
    assert any("ruleIndex" in p for p in problems)


def test_validate_sarif_rejects_non_objects():
    assert validate_sarif([]) != []
    assert validate_sarif({"version": "2.1.0"}) != []
