"""The ``repro lint`` subcommand: formats, exit codes, rule listing."""

import json

import pytest

from repro.__main__ import main


def _bad_file(tmp_path):
    target = tmp_path / "core"
    target.mkdir()
    path = target / "bad.py"
    path.write_text("import random\n")
    return path


def test_exit_zero_and_clean_banner_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("VALUE = 3\n")
    assert main(["lint", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "clean (0 findings)" in out


def test_exit_one_with_text_report_on_findings(tmp_path, capsys):
    path = _bad_file(tmp_path)
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert "[R2]" in out
    assert "bad.py:1:1" in out
    assert "1 finding" in out


def test_json_format_is_machine_readable(tmp_path, capsys):
    path = _bad_file(tmp_path)
    assert main(["lint", str(path), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    entry = payload[0]
    assert entry["rule"] == "R2"
    assert entry["severity"] == "error"
    assert entry["line"] == 1
    assert entry["path"].endswith("bad.py")


def test_rules_filter_limits_output(tmp_path, capsys):
    path = _bad_file(tmp_path)
    assert main(["lint", str(path), "--rules", "R1"]) == 0
    assert "clean" in capsys.readouterr().out


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    path = _bad_file(tmp_path)
    assert main(["lint", str(path), "--rules", "R99"]) == 2
    assert "unknown rule" in capsys.readouterr().out


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("R1", "R2", "R3", "R4", "R5", "R8", "R9", "R10",
                 "R11"):
        assert rule in out
    # Natural ordering: R9 before R10 (not lexicographic).
    assert out.index("R9 ") < out.index("R10 ")


# -- baseline flags ---------------------------------------------------------

def test_write_baseline_then_lint_against_it(tmp_path, capsys):
    path = _bad_file(tmp_path)
    snapshot = tmp_path / "baseline.json"
    assert main([
        "lint", str(path), "--write-baseline", str(snapshot),
    ]) == 0
    assert "wrote baseline with 1 finding" in capsys.readouterr().out

    # The recorded finding no longer fails the gate...
    assert main([
        "lint", str(path), "--baseline", str(snapshot),
    ]) == 0
    out = capsys.readouterr().out
    assert "clean" in out and "matched the baseline" in out

    # ...but a new violation still does.
    path.write_text("import random\nimport random as r2\n")
    assert main([
        "lint", str(path), "--baseline", str(snapshot),
    ]) == 1


def test_unreadable_baseline_is_usage_error(tmp_path, capsys):
    path = _bad_file(tmp_path)
    snapshot = tmp_path / "baseline.json"
    snapshot.write_text("not json")
    assert main([
        "lint", str(path), "--baseline", str(snapshot),
    ]) == 2
    assert "invalid JSON" in capsys.readouterr().out


# -- SARIF format -----------------------------------------------------------

def test_sarif_format_emits_a_valid_document(tmp_path, capsys):
    from repro.lint.flow import validate_sarif

    path = _bad_file(tmp_path)
    assert main(["lint", str(path), "--format=sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert validate_sarif(document) == []
    results = document["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["R2"]


def test_sarif_with_baseline_reports_only_new_findings(
    tmp_path, capsys
):
    path = _bad_file(tmp_path)
    snapshot = tmp_path / "baseline.json"
    main(["lint", str(path), "--write-baseline", str(snapshot)])
    capsys.readouterr()
    assert main([
        "lint", str(path), "--format=sarif",
        "--baseline", str(snapshot),
    ]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["runs"][0]["results"] == []


def test_repo_gate_command_exits_zero(capsys):
    # The exact invocation the CI gate runs.
    import os
    if not os.path.isdir("src/repro"):
        pytest.skip("not running from the repository root")
    assert main(["lint", "src/repro"]) == 0
