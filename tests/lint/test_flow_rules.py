"""R8-R11 must fire on violating snippets and pass clean ones.

Single-module cases go through ``lint_source`` (which builds a
one-module project); cross-module cases build fixture trees on disk
and run ``lint_paths``.
"""

import pytest

from repro.lint import lint_paths, lint_source

FLOW_RULES = ["R8", "R9", "R10", "R11"]


def _rules(findings):
    return [f.rule for f in findings]


# -- R8: determinism taint --------------------------------------------------

def test_r8_set_iteration_into_sink_fires():
    src = (
        "def drain(frontier, items):\n"
        "    for node in set(items):\n"
        "        frontier.append(node)\n"
    )
    assert _rules(lint_source(src, "core/x.py", FLOW_RULES)) == ["R8"]


def test_r8_sorted_wrapper_is_clean():
    src = (
        "def drain(frontier, items):\n"
        "    for node in sorted(set(items)):\n"
        "        frontier.append(node)\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r8_dict_iteration_is_clean():
    # Dicts iterate in insertion order: deterministic, not flagged.
    src = (
        "def drain(frontier, table):\n"
        "    for node in table:\n"
        "        frontier.append(node)\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r8_set_typed_local_and_set_algebra_fire():
    src = (
        "def run(q, a, b):\n"
        "    pending = set(a)\n"
        "    for x in pending:\n"
        "        q.put(x)\n"
        "    for y in set(a) | set(b):\n"
        "        q.put_nowait(y)\n"
    )
    assert _rules(
        lint_source(src, "core/x.py", FLOW_RULES)
    ) == ["R8", "R8"]


def test_r8_sink_on_local_list_is_clean():
    src = (
        "def collect(items):\n"
        "    out = []\n"
        "    for x in set(items):\n"
        "        out.append(x)\n"
        "    return sorted(out)\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r8_yield_in_set_loop_fires():
    # Order escapes to the caller through the generator protocol.
    src = (
        "def emit(items):\n"
        "    for x in set(items):\n"
        "        yield x\n"
    )
    assert _rules(lint_source(src, "core/x.py", FLOW_RULES)) == ["R8"]


def test_r8_taint_through_same_module_callee():
    src = (
        "def publish(out, x):\n"
        "    out.append(x)\n"
        "def run(out, items):\n"
        "    for x in set(items):\n"
        "        publish(out, x)\n"
    )
    findings = lint_source(src, "core/x.py", FLOW_RULES)
    assert _rules(findings) == ["R8"]
    assert findings[0].line == 4


def test_r8_calling_a_generator_in_the_loop_is_clean():
    # Consuming a generator inside the loop keeps order local.
    src = (
        "def pairs(x):\n"
        "    yield x\n"
        "def run(items):\n"
        "    total = 0\n"
        "    for x in set(items):\n"
        "        for y in pairs(x):\n"
        "            total += y\n"
        "    return total\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r8_cross_module_taint_respects_import_graph(tmp_path):
    (tmp_path / "core").mkdir()
    (tmp_path / "core" / "sinks.py").write_text(
        "def enqueue_all(q, x):\n"
        "    q.put(x)\n"
    )
    # caller.py imports sinks -> the call links, the taint flows.
    (tmp_path / "core" / "caller.py").write_text(
        "from .sinks import enqueue_all\n"
        "def run(q, items):\n"
        "    for x in set(items):\n"
        "        enqueue_all(q, x)\n"
    )
    # island.py has a same-named local helper but no import edge, and
    # its own enqueue_all is sink-free.
    (tmp_path / "island.py").write_text(
        "def enqueue_all(q, x):\n"
        "    return (q, x)\n"
        "def run(q, items):\n"
        "    for x in set(items):\n"
        "        enqueue_all(q, x)\n"
    )
    findings = lint_paths([tmp_path], FLOW_RULES)
    assert [(f.rule, f.path.rsplit("/", 1)[-1]) for f in findings] == [
        ("R8", "caller.py"),
    ]


def test_r8_entropy_sources_fire():
    src = (
        "import os\n"
        "import uuid\n"
        "def token():\n"
        "    return uuid.uuid4().hex + os.urandom(4).hex()\n"
    )
    assert _rules(
        lint_source(src, "models/x.py", FLOW_RULES)
    ) == ["R8", "R8"]


def test_r8_unstable_keys_fire_and_digest_is_clean():
    bad = (
        "def shard_key(node):\n"
        "    return hash(node) % 8\n"
        "def stash(cache, obj):\n"
        "    cache[id(obj)] = obj\n"
    )
    assert _rules(
        lint_source(bad, "serve/x.py", FLOW_RULES)
    ) == ["R8", "R8"]
    clean = (
        "import zlib\n"
        "def shard_key(node):\n"
        "    return zlib.crc32(repr(node).encode()) % 8\n"
    )
    assert lint_source(clean, "serve/x.py", FLOW_RULES) == []


def test_r8_exempts_bench_modules():
    src = (
        "def drain(frontier, items):\n"
        "    for node in set(items):\n"
        "        frontier.append(node)\n"
    )
    assert lint_source(src, "bench/x.py", FLOW_RULES) == []


# -- R9: cross-process submission safety ------------------------------------

def test_r9_lambda_submission_fires():
    src = (
        "def run(pool):\n"
        "    return pool.submit(lambda: 1)\n"
    )
    assert _rules(lint_source(src, "models/x.py", FLOW_RULES)) == ["R9"]


def test_r9_local_def_submission_fires():
    src = (
        "def run(pool):\n"
        "    def work():\n"
        "        return 1\n"
        "    return pool.submit(work)\n"
    )
    assert _rules(lint_source(src, "models/x.py", FLOW_RULES)) == ["R9"]


def test_r9_module_level_callable_is_clean():
    src = (
        "def work(chunk):\n"
        "    return chunk\n"
        "def run(pool, chunk):\n"
        "    return pool.submit(work, chunk)\n"
    )
    assert lint_source(src, "models/x.py", FLOW_RULES) == []


def test_r9_post_submit_mutation_fires():
    src = (
        "def work(chunk):\n"
        "    return chunk\n"
        "def run(pool, chunk):\n"
        "    fut = pool.submit(work, chunk)\n"
        "    chunk.append(1)\n"
        "    return fut\n"
    )
    findings = lint_source(src, "models/x.py", FLOW_RULES)
    assert _rules(findings) == ["R9"]
    assert "'chunk'" in findings[0].message
    assert findings[0].line == 5


def test_r9_mutation_before_submit_is_clean():
    src = (
        "def work(chunk):\n"
        "    return chunk\n"
        "def run(pool, chunk):\n"
        "    chunk.append(1)\n"
        "    return pool.submit(work, chunk)\n"
    )
    assert lint_source(src, "models/x.py", FLOW_RULES) == []


def test_r9_rebinding_frees_the_capture():
    src = (
        "def work(chunk):\n"
        "    return chunk\n"
        "def run(pool, chunk):\n"
        "    fut = pool.submit(work, chunk)\n"
        "    chunk = []\n"
        "    chunk.append(1)\n"
        "    return fut\n"
    )
    assert lint_source(src, "models/x.py", FLOW_RULES) == []


def test_r9_self_attribute_mutation_after_submit_fires():
    src = (
        "def work(x):\n"
        "    return x\n"
        "class Runner:\n"
        "    def kick(self, pool):\n"
        "        fut = pool.submit(work, self.payload)\n"
        "        self.payload.update(done=True)\n"
        "        return fut\n"
    )
    findings = lint_source(src, "models/x.py", FLOW_RULES)
    assert _rules(findings) == ["R9"]
    assert "'self.payload'" in findings[0].message


def test_r9_executor_map_counts_plain_map_does_not():
    bad = (
        "def work(x):\n"
        "    return x\n"
        "def run(executor, chunk):\n"
        "    out = list(executor.map(work, chunk))\n"
        "    chunk.append(1)\n"
        "    return out\n"
    )
    assert _rules(lint_source(bad, "models/x.py", FLOW_RULES)) == ["R9"]
    clean = (
        "def run(chunk):\n"
        "    out = list(map(str, chunk))\n"
        "    chunk.append(1)\n"
        "    return out\n"
    )
    assert lint_source(clean, "models/x.py", FLOW_RULES) == []


# -- R10: recorder hot-path discipline --------------------------------------

def test_r10_unguarded_recorder_call_in_loop_fires():
    src = (
        "def run(rec, items):\n"
        "    for x in items:\n"
        "        rec.observe('x', x)\n"
    )
    assert _rules(lint_source(src, "core/x.py", FLOW_RULES)) == ["R10"]


def test_r10_none_guard_is_clean():
    src = (
        "def run(rec, items):\n"
        "    for x in items:\n"
        "        if rec is not None:\n"
        "            rec.observe('x', x)\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r10_assert_narrowing_is_clean():
    # The accepted idiom when liveness rides a derived flag.
    src = (
        "def run(rec, items, timed):\n"
        "    for x in items:\n"
        "        if timed:\n"
        "            assert rec is not None\n"
        "            rec.observe('x', x)\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r10_guard_outside_the_loop_is_clean():
    src = (
        "def run(rec, items):\n"
        "    if rec is not None:\n"
        "        for x in items:\n"
        "            rec.count('steps')\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r10_call_outside_any_loop_is_clean():
    src = (
        "def run(rec):\n"
        "    rec.event('start')\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r10_raw_store_fires_live_is_clean():
    bad = (
        "class Engine:\n"
        "    def __init__(self, recorder):\n"
        "        self._rec = recorder\n"
    )
    assert _rules(lint_source(bad, "core/x.py", FLOW_RULES)) == ["R10"]
    clean = (
        "from ..telemetry import live\n"
        "class Engine:\n"
        "    def __init__(self, recorder):\n"
        "        self._rec = live(recorder)\n"
    )
    assert lint_source(clean, "core/x.py", FLOW_RULES) == []


def test_r10_handoff_to_another_object_is_clean():
    # Storing onto another object's declared slot is plumbing; the
    # consumer normalises at bind time.
    src = (
        "def solve(tree, recorder):\n"
        "    policy = make_policy()\n"
        "    policy.recorder = recorder\n"
        "    return policy\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_r10_exempts_telemetry_modules():
    src = (
        "def run(rec, items):\n"
        "    for x in items:\n"
        "        rec.observe('x', x)\n"
    )
    assert lint_source(src, "telemetry/x.py", FLOW_RULES) == []


# -- R11: serve-path blocking hygiene ---------------------------------------

def test_r11_blocking_calls_in_handler_fire():
    src = (
        "import time\n"
        "def handle_request(req):\n"
        "    time.sleep(0.1)\n"
        "    with open('log.txt') as fh:\n"
        "        fh.read()\n"
        "    return req\n"
    )
    findings = lint_source(src, "serve/handler.py", FLOW_RULES)
    assert _rules(findings) == ["R11", "R11"]


def test_r11_reaches_helpers_through_the_call_graph():
    src = (
        "def handle_request(req):\n"
        "    return _render(req)\n"
        "def _render(req):\n"
        "    return req.path.read_text()\n"
    )
    findings = lint_source(src, "serve/handler.py", FLOW_RULES)
    assert _rules(findings) == ["R11"]
    assert "_render" in findings[0].message


def test_r11_unbounded_queue_get_fires_timeout_is_clean():
    bad = (
        "def handle(queue):\n"
        "    return queue.get()\n"
    )
    assert _rules(
        lint_source(bad, "serve/x.py", FLOW_RULES)
    ) == ["R11"]
    clean = (
        "def handle(queue):\n"
        "    return queue.get(timeout=1.0)\n"
    )
    assert lint_source(clean, "serve/x.py", FLOW_RULES) == []


def test_r11_only_applies_to_serve_request_paths():
    src = (
        "import time\n"
        "def handle_request(req):\n"
        "    time.sleep(0.1)\n"
    )
    # Same code outside serve/ is not in scope.
    assert lint_source(src, "models/x.py", FLOW_RULES) == []
    # And serve/ code not reachable from a handler is not in scope.
    cli = (
        "import time\n"
        "def main(argv):\n"
        "    time.sleep(0.1)\n"
    )
    assert lint_source(cli, "serve/cli.py", FLOW_RULES) == []


def test_r11_cross_module_serve_scope(tmp_path):
    serve = tmp_path / "serve"
    serve.mkdir()
    (serve / "service.py").write_text(
        "from .store import load_page\n"
        "def handle_request(req):\n"
        "    return load_page(req)\n"
    )
    (serve / "store.py").write_text(
        "def load_page(req):\n"
        "    return open(req).read()\n"
    )
    findings = lint_paths([tmp_path], FLOW_RULES)
    assert [(f.rule, f.path.rsplit("/", 1)[-1]) for f in findings] == [
        ("R11", "store.py"),
    ]


# -- cross-cutting behaviour ------------------------------------------------

def test_flow_findings_respect_line_suppressions():
    src = (
        "def drain(frontier, items):\n"
        "    for node in set(items):  # lint: disable=R8\n"
        "        frontier.append(node)\n"
    )
    assert lint_source(src, "core/x.py", FLOW_RULES) == []


def test_flow_findings_respect_file_disable():
    src = (
        "# lint: file-disable=R9\n"
        "def run(pool):\n"
        "    return pool.submit(lambda: 1)\n"
    )
    assert lint_source(src, "models/x.py", FLOW_RULES) == []


@pytest.mark.parametrize("rule", FLOW_RULES)
def test_flow_rules_run_under_the_default_rule_set(rule):
    # No --rules filter: project rules are part of the default run.
    by_rule = {
        "R8": "def f(q, xs):\n"
              "    for x in set(xs):\n"
              "        q.put(x)\n",
        "R9": "def f(pool):\n"
              "    return pool.submit(lambda: 1)\n",
        "R10": "def f(rec, xs):\n"
               "    for x in xs:\n"
               "        rec.event('x')\n",
        "R11": "import time\n"
               "def handle(req):\n"
               "    time.sleep(1)\n",
    }
    path = "serve/x.py" if rule == "R11" else "other/x.py"
    findings = lint_source(by_rule[rule], path)
    assert rule in {f.rule for f in findings}
