"""Units of the repro.lint.flow framework: summaries, import graph,
call graph (cycles, decorators, methods, nested defs)."""

import ast

from repro.lint.base import LintConfig, ModuleContext
from repro.lint.flow import (
    CallGraph,
    ModuleGraph,
    build_project,
    collect_functions,
)
from repro.lint.flow.modgraph import module_dotted


def _ctx(source, logical="core/mod.py"):
    return ModuleContext(
        path=logical,
        logical_path=logical,
        tree=ast.parse(source),
        source=source,
        config=LintConfig(msgkind_members=()),
    )


# -- function summaries -----------------------------------------------------

def test_qualnames_cover_methods_and_nested_defs():
    ctx = _ctx(
        "def top():\n"
        "    def inner():\n"
        "        pass\n"
        "class Engine:\n"
        "    def step(self):\n"
        "        pass\n"
        "    class Nested:\n"
        "        def deep(self):\n"
        "            pass\n"
    )
    quals = {fn.qualname for fn in collect_functions(ctx)}
    assert quals == {
        "top", "top.inner", "Engine.step", "Engine.Nested.deep",
    }


def test_decorated_functions_are_summarized():
    ctx = _ctx(
        "import functools\n"
        "@functools.lru_cache\n"
        "def cached(x):\n"
        "    return helper(x)\n"
    )
    (fn,) = collect_functions(ctx)
    assert fn.qualname == "cached"
    assert [site.name for site in fn.calls] == ["helper"]


def test_summary_is_shallow():
    # The nested def's calls belong to the nested summary only.
    ctx = _ctx(
        "def outer(q):\n"
        "    def inner():\n"
        "        q.put(1)\n"
        "    return inner\n"
    )
    by_name = {fn.qualname: fn for fn in collect_functions(ctx)}
    assert not by_name["outer"].order_sinks
    assert [s.name for s in by_name["outer.inner"].order_sinks] == ["put"]
    assert "inner" in by_name["outer"].local_defs


def test_order_sink_on_local_receiver_is_not_counted():
    ctx = _ctx(
        "def build(items, frontier):\n"
        "    out = []\n"
        "    for x in items:\n"
        "        out.append(x)\n"       # local list: not a sink
        "        frontier.append(x)\n"  # parameter: a sink
    )
    (fn,) = collect_functions(ctx)
    assert [s.dotted for s in fn.order_sinks] == ["frontier.append"]


def test_generator_flag_and_key():
    ctx = _ctx(
        "class Tree:\n"
        "    def walk(self):\n"
        "        yield 1\n",
        logical="trees/base.py",
    )
    (fn,) = collect_functions(ctx)
    assert fn.is_generator
    assert fn.key == "trees/base.py::Tree.walk"
    assert fn.name == "walk"


# -- module import graph ----------------------------------------------------

def test_module_dotted_strips_init():
    assert module_dotted("serve/cache.py") == "serve.cache"
    assert module_dotted("serve/__init__.py") == "serve"
    assert module_dotted("__init__.py") == ""


def test_import_graph_resolves_all_three_spellings():
    a = _ctx("from repro.core import frontier\n", "models/a.py")
    b = _ctx("from ..core.frontier import FrontierIndex\n",
             "models/b.py")
    c = _ctx("from core import frontier\n", "models/c.py")
    target = _ctx("X = 1\n", "core/frontier.py")
    graph = ModuleGraph([a, b, c, target])
    for src in ("models/a.py", "models/b.py", "models/c.py"):
        assert graph.imports_of(src) == ("core/frontier.py",)
    assert set(graph.importers_of("core/frontier.py")) == {
        "models/a.py", "models/b.py", "models/c.py",
    }


def test_transitive_imports_follow_chains_and_cycles():
    a = _ctx("from . import b\n", "pkg/a.py")
    b = _ctx("from . import c\n", "pkg/b.py")
    c = _ctx("from . import a\n", "pkg/c.py")  # cycle back to a
    graph = ModuleGraph([a, b, c])
    assert graph.imports_transitively("pkg/a.py", "pkg/c.py")
    assert graph.imports_transitively("pkg/c.py", "pkg/b.py")
    assert not graph.imports_transitively("pkg/a.py", "pkg/missing.py")


def test_imports_outside_the_linted_set_are_ignored():
    ctx = _ctx("import numpy as np\nimport os\n", "core/x.py")
    graph = ModuleGraph([ctx])
    assert graph.imports_of("core/x.py") == ()


# -- call graph -------------------------------------------------------------

def _project(*pairs):
    return build_project([_ctx(src, path) for path, src in pairs])


def test_callees_resolve_within_import_scope_only():
    project = _project(
        ("app/main.py",
         "from util.helpers import work\n"
         "def run():\n"
         "    work()\n"),
        ("util/helpers.py", "def work():\n    pass\n"),
        # Same-named function in a module main.py does NOT import.
        ("island/other.py", "def work():\n    pass\n"),
    )
    (run,) = [f for f in project.functions if f.name == "run"]
    callees = project.callgraph.callees(run)
    assert [c.key for c in callees] == ["util/helpers.py::work"]


def test_transitive_fixpoint_handles_recursion():
    project = _project(
        ("core/a.py",
         "def ping(q):\n"
         "    pong(q)\n"
         "def pong(q):\n"
         "    ping(q)\n"       # mutual recursion
         "    q.put(1)\n"),    # the sink
    )
    marked = project.callgraph.transitive(
        lambda fn: bool(fn.order_sinks)
    )
    assert marked == {"core/a.py::ping", "core/a.py::pong"}


def test_reachable_respects_the_within_predicate():
    project = _project(
        ("serve/service.py",
         "from .cache import lookup\n"
         "from ..models.runtime import evaluate\n"
         "def handle_request(req):\n"
         "    lookup(req)\n"),
        ("serve/cache.py",
         "from ..models.runtime import evaluate\n"
         "def lookup(req):\n"
         "    evaluate(req)\n"),
        ("models/runtime.py", "def evaluate(req):\n    pass\n"),
    )
    roots = [f for f in project.functions if f.name == "handle_request"]
    names = [
        fn.key for fn in project.callgraph.reachable(
            roots, within=lambda fn: fn.module.startswith("serve/")
        )
    ]
    assert names == [
        "serve/service.py::handle_request", "serve/cache.py::lookup",
    ]


def test_unrestricted_callgraph_links_any_same_name():
    # Without a module graph every name match is visible.
    ctx = _ctx("def f():\n    g()\ndef g():\n    pass\n")
    functions = collect_functions(ctx)
    graph = CallGraph(functions, None)
    f = next(fn for fn in functions if fn.name == "f")
    assert [c.name for c in graph.callees(f)] == ["g"]
