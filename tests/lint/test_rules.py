"""Each rule must fire on a violating snippet and pass a clean one."""

import pytest

from repro.lint import lint_source

# (rule, logical_path, bad snippet, clean counterpart)
CASES = [
    (
        "R1",
        "core/engine_helper.py",
        # Hand-rolled step counter with no tie to the accounting layer.
        "def run(tree):\n"
        "    num_steps = 0\n"
        "    for leaf in tree:\n"
        "        num_steps += 1\n"
        "    return num_steps\n",
        # Same module, charging work through ExecutionTrace.
        "from ..models.accounting import ExecutionTrace\n"
        "def run(tree):\n"
        "    trace = ExecutionTrace()\n"
        "    for leaf in tree:\n"
        "        trace.record([leaf])\n"
        "    return trace.num_steps\n",
    ),
    (
        "R1",
        "simulator/gadget.py",
        "class Gadget:\n"
        "    def bump(self):\n"
        "        self._expansions += 1\n",
        # The chokepoint itself may own the raw counter.
        "class Gadget:\n"
        "    def count_expansion(self, node):\n"
        "        self._expansions += 1\n",
    ),
    (
        "R2",
        "core/chooser.py",
        "import random\n"
        "def pick(xs):\n"
        "    return random.choice(xs)\n",
        "import numpy as np\n"
        "def pick(xs, seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return xs[rng.integers(len(xs))]\n",
    ),
    (
        "R2",
        "trees/generators/noise.py",
        "import numpy as np\n"
        "def noise(n):\n"
        "    return np.random.rand(n)\n",
        "import numpy as np\n"
        "def noise(n, seed):\n"
        "    return np.random.default_rng(seed).random(n)\n",
    ),
    (
        "R2",
        "core/rng_setup.py",
        "import numpy as np\n"
        "rng = np.random.default_rng()\n",
        "import numpy as np\n"
        "def make_rng(seed):\n"
        "    return np.random.default_rng(seed)\n",
    ),
    (
        "R3",
        "simulator/dispatch.py",
        "from .messages import MsgKind\n"
        "def handle(msg):\n"
        "    if msg.kind is MsgKind.S_SOLVE:\n"
        "        return 's'\n"
        "    elif msg.kind is MsgKind.P_SOLVE:\n"
        "        return 'p'\n",
        "from .messages import MsgKind\n"
        "def handle(msg):\n"
        "    if msg.kind is MsgKind.S_SOLVE:\n"
        "        return 's'\n"
        "    elif msg.kind is MsgKind.P_SOLVE:\n"
        "        return 'p'\n"
        "    else:\n"
        "        raise ValueError(f'unexpected {msg!r}')\n",
    ),
    (
        "R3",
        "simulator/dispatch_match.py",
        "from .messages import MsgKind\n"
        "def handle(msg):\n"
        "    match msg.kind:\n"
        "        case MsgKind.S_SOLVE:\n"
        "            return 's'\n"
        "        case MsgKind.VAL:\n"
        "            return 'v'\n",
        "from .messages import MsgKind\n"
        "def handle(msg):\n"
        "    match msg.kind:\n"
        "        case MsgKind.S_SOLVE:\n"
        "            return 's'\n"
        "        case MsgKind.VAL:\n"
        "            return 'v'\n"
        "        case _:\n"
        "            raise ValueError(msg)\n",
    ),
    (
        "R4",
        "simulator/payload.py",
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class ProbeMessage:\n"
        "    node: int\n",
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class ProbeMessage:\n"
        "    node: int\n",
    ),
    (
        "R4",
        "simulator/payload_fields.py",
        "from dataclasses import dataclass\n"
        "from typing import List\n"
        "@dataclass(frozen=True)\n"
        "class BatchMessage:\n"
        "    nodes: List[int]\n",
        "from dataclasses import dataclass\n"
        "from typing import Tuple\n"
        "@dataclass(frozen=True)\n"
        "class BatchMessage:\n"
        "    nodes: Tuple[int, ...]\n",
    ),
    (
        "R5",
        "gadgets/__init__.py",
        "from .impl import widget\n",
        "from .impl import widget\n"
        "__all__ = ['widget']\n",
    ),
    (
        "R5",
        "analysis/extras.py",
        "def measure():\n"
        "    pass\n"
        "__all__ = ['measure', 'vanished']\n",
        "def measure():\n"
        "    pass\n"
        "__all__ = ['measure']\n",
    ),
    (
        "R6",
        "models/loader.py",
        # Handler body does nothing: the error vanishes.
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError:\n"
        "        pass\n",
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError:\n"
        "        return None\n",
    ),
    (
        "R7",
        # R2-exempt for wall-clock, but R7 still demands a per-site
        # acknowledgement.
        "bench/harness.py",
        "import time\n"
        "def stamp():\n"
        "    return time.perf_counter()\n",
        "import time\n"
        "def stamp():\n"
        "    return time.perf_counter()  # lint: disable=R7\n",
    ),
    (
        "R7",
        "models/executors.py",
        # `from time import` aliases are raw clock reads too.
        "from time import monotonic as now\n"
        "def stamp():\n"
        "    return now()\n",
        "def stamp(recorder):\n"
        "    return recorder.clock\n",
    ),
    (
        "R6",
        "analysis/cleanup.py",
        # Bare except catches KeyboardInterrupt/SystemExit too.
        "def close(handle):\n"
        "    try:\n"
        "        handle.close()\n"
        "    except:\n"
        "        raise RuntimeError('close failed')\n",
        "def close(handle):\n"
        "    try:\n"
        "        handle.close()\n"
        "    except Exception:\n"
        "        raise RuntimeError('close failed')\n",
    ),
    (
        "R12",
        "core/arena/selection.py",
        # Per-node Python loop where a level sweep belongs.
        "def count_live(arrays, settled):\n"
        "    total = 0\n"
        "    for node in arrays.node_ids:\n"
        "        total += int(settled[node])\n"
        "    return total\n",
        # The vectorised counterpart iterates per depth level.
        "def count_live(arrays, settled):\n"
        "    total = 0\n"
        "    for level in arrays.levels[1:]:\n"
        "        total += int(settled[level].sum())\n"
        "    return total\n",
    ),
    (
        "R12",
        "core/arena/boolean.py",
        # range(len(...)) index walks are per-node loops in disguise.
        "def seed(values, out):\n"
        "    for i in range(len(values)):\n"
        "        out[i] = values[i]\n",
        "def seed(values, out):\n"
        "    out[:] = values\n",
    ),
]


@pytest.mark.parametrize(
    "rule,path,bad,clean",
    CASES,
    ids=[f"{rule}:{path}" for rule, path, _, _ in CASES],
)
def test_rule_fires_on_bad_and_passes_clean(rule, path, bad, clean):
    bad_findings = lint_source(bad, path)
    assert [f.rule for f in bad_findings] == [rule]
    assert lint_source(clean, path) == []


def test_r1_ignores_counters_outside_model_scopes():
    src = "def tally():\n    steps = 0\n    steps += 1\n    return steps\n"
    assert lint_source(src, "analysis/summary.py") == []


def test_r2_allowlists_oracle_runner_and_bench():
    # R2's wall-clock exemption for the oracle/bench modules stands;
    # R7 additionally wants each raw call site acknowledged there, so
    # the bare read now yields exactly the R7 finding and the
    # acknowledged read is fully clean.
    bare = "import time\nstart = time.perf_counter()\n"
    acked = ("import time\n"
             "start = time.perf_counter()  # lint: disable=R7\n")
    for path in ("models/oracle_runner.py", "models/executors.py",
                 "faults/oracle.py", "bench/harness.py"):
        assert [f.rule for f in lint_source(bare, path)] == ["R7"]
        assert lint_source(acked, path) == []
    for path in ("core/solve_engine.py", "models/accounting.py"):
        rules = {f.rule for f in lint_source(bare, path)}
        assert "R2" in rules and "R7" in rules


def test_r2_and_r7_both_flag_raw_clock_in_model_code():
    src = ("import time\n"
           "def stamp():\n"
           "    return time.perf_counter()\n")
    assert sorted(f.rule for f in lint_source(src, "analysis/timing.py")) \
        == ["R2", "R7"]
    assert lint_source("def stamp(clock):\n    return clock()\n",
                       "analysis/timing.py") == []


def test_r7_exempts_telemetry_and_wallclock_wholesale():
    # R7 never fires in its home modules.  (R2 still polices `import
    # time` inside telemetry/ — the package records durations handed
    # to it but reads no clocks itself — so filter to R7 here.)
    src = "import time\nstart = time.monotonic()\n"
    for path in ("telemetry/recorder.py", "telemetry/export.py",
                 "bench/wallclock.py"):
        assert [f.rule for f in lint_source(src, path)
                if f.rule == "R7"] == []
    assert lint_source(src, "bench/wallclock.py") == []


def test_r7_ignores_sleep_and_other_time_members():
    src = "import time\ntime.sleep(0)\nx = time.gmtime\n"
    assert lint_source(src, "models/executors.py") == []


def test_r2_flags_default_rng_with_literal_none_seed():
    src = "import numpy as np\nrng = np.random.default_rng(None)\n"
    assert [f.rule for f in lint_source(src, "core/x.py")] == ["R2"]


def test_r3_single_guard_is_not_a_dispatch():
    # One negative membership test with a raise is a guard, not a
    # dispatch chain; it must not be flagged.
    src = (
        "from .messages import MsgKind\n"
        "def check(msg):\n"
        "    if msg.kind is not MsgKind.VAL:\n"
        "        raise ValueError(msg)\n"
        "    return msg.value\n"
    )
    assert lint_source(src, "simulator/guard.py") == []


def test_r3_else_with_nested_if_counts_as_reject():
    # Regression: `else:` holding a single nested `if` must not be
    # mistaken for an elif continuation of the MsgKind chain.
    src = (
        "from .messages import MsgKind\n"
        "def handle(msg, newest):\n"
        "    if msg.kind is MsgKind.VAL:\n"
        "        return 'v'\n"
        "    elif msg.kind is MsgKind.S_SOLVE:\n"
        "        return 's'\n"
        "    else:\n"
        "        if newest is None:\n"
        "            return 'p'\n"
    )
    assert lint_source(src, "simulator/nested.py") == []


def test_r3_full_coverage_without_else_is_exhaustive():
    arms = "\n".join(
        f"    {'if' if i == 0 else 'elif'} msg.kind is MsgKind.{name}:\n"
        f"        return {i}"
        for i, name in enumerate(
            ["S_SOLVE", "P_SOLVE", "P_SOLVE2", "P_SOLVE3", "VAL",
             "ACK", "HEARTBEAT"]
        )
    )
    src = f"from .messages import MsgKind\ndef handle(msg):\n{arms}\n"
    assert lint_source(src, "simulator/full.py") == []


def test_r4_ignores_non_payload_dataclasses():
    src = (
        "from dataclasses import dataclass, field\n"
        "from typing import List\n"
        "@dataclass\n"
        "class SimulationResult:\n"
        "    degree_by_tick: List[int] = field(default_factory=list)\n"
    )
    assert lint_source(src, "simulator/results.py") == []


def test_r5_duplicate_entry_flagged():
    src = "x = 1\n__all__ = ['x', 'x']\n"
    assert [f.rule for f in lint_source(src, "analysis/dup.py")] == ["R5"]


def test_r5_severity_is_warning():
    findings = lint_source("from .impl import a\n", "pkg/__init__.py")
    assert [str(f.severity) for f in findings] == ["warning"]


def test_r6_ellipsis_and_docstring_bodies_are_swallows():
    for body in ("        ...\n", "        'ignored on purpose'\n"):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n" + body
        )
        assert [f.rule for f in lint_source(src, "core/x.py")] == ["R6"]


def test_r6_bare_except_with_noop_body_reports_both():
    src = "try:\n    g()\nexcept:\n    pass\n"
    assert [f.rule for f in lint_source(src, "core/x.py")] == ["R6", "R6"]


def test_r6_handler_that_acts_is_clean():
    src = (
        "def f(log):\n"
        "    try:\n"
        "        return g()\n"
        "    except ValueError as exc:\n"
        "        log.warning('g failed: %s', exc)\n"
        "        return None\n"
    )
    assert lint_source(src, "core/x.py") == []


def test_r12_scoped_to_arena_package():
    per_node = (
        "def count(tree):\n"
        "    total = 0\n"
        "    for leaf in tree.leaves():\n"
        "        total += 1\n"
        "    return total\n"
    )
    # Fires only under core/arena/ — object-graph engines loop freely.
    assert lint_source(per_node, "core/frontier.py") == []
    assert lint_source(per_node, "trees/explicit.py") == []
    assert [
        f.rule for f in lint_source(per_node, "core/arena/boolean.py")
    ] == ["R12"]


def test_r12_comprehensions_and_n_nodes_ranges_fire():
    comp = (
        "def ids(arrays):\n"
        "    return [int(node) for node in arrays.node_ids]\n"
    )
    findings = lint_source(comp, "core/arena/selection.py")
    assert [f.rule for f in findings] == ["R12"]
    walk = (
        "def spans(arrays):\n"
        "    return [arrays.spans[i] for i in range(arrays.n_nodes)]\n"
    )
    findings = lint_source(walk, "core/arena/selection.py")
    assert [f.rule for f in findings] == ["R12"]


def test_r12_structural_loops_stay_clean():
    src = (
        "def cascade(arrays, buckets):\n"
        "    for depth in range(max(buckets), 0, -1):\n"
        "        batch = buckets[depth]\n"
        "    for depth, level in enumerate(arrays.levels[1:]):\n"
        "        batch = level\n"
        "    while True:\n"
        "        break\n"
    )
    assert lint_source(src, "core/arena/alphabeta.py") == []


def test_r12_acknowledged_seed_loop_is_suppressed():
    src = (
        "def seed(index, state, settled):\n"
        "    for node in state.value:  # lint: disable=R12\n"
        "        settled[index[node]] = True\n"
    )
    assert lint_source(src, "core/arena/policies.py") == []
