"""Unit tests for execution traces and results."""

import pytest

from repro.errors import ModelViolationError
from repro.models import EvalResult, ExecutionTrace


class TestExecutionTrace:
    def test_empty_trace(self):
        tr = ExecutionTrace()
        assert tr.num_steps == 0
        assert tr.total_work == 0
        assert tr.processors == 0
        assert tr.degree_histogram() == {}

    def test_record_and_derive(self):
        tr = ExecutionTrace()
        tr.record([1, 2, 3])
        tr.record([4])
        tr.record([5, 6])
        assert tr.num_steps == 3
        assert tr.total_work == 6
        assert tr.processors == 3
        assert tr.degree_histogram() == {3: 1, 1: 1, 2: 1}
        assert tr.steps_of_degree(1) == 1
        assert tr.steps_of_degree(9) == 0

    def test_empty_step_rejected(self):
        tr = ExecutionTrace()
        with pytest.raises(ModelViolationError):
            tr.record([])

    def test_batches_kept_on_request(self):
        tr = ExecutionTrace(keep_batches=True)
        tr.record(["a", "b"])
        assert tr.batches == [("a", "b")]

    def test_batches_dropped_by_default(self):
        tr = ExecutionTrace()
        tr.record(["a"])
        assert tr.batches is None


class TestEvalResult:
    def test_passthrough_properties(self):
        tr = ExecutionTrace()
        tr.record([1, 2])
        tr.record([3])
        res = EvalResult(value=1, trace=tr, evaluated=[1, 2, 3])
        assert res.num_steps == 2
        assert res.total_work == 3
        assert res.processors == 2
        assert res.value == 1
