"""Unit tests for the optional batch evaluator."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.models.executors import BatchEvaluator


def square(x):
    return x * x


class TestBatchEvaluator:
    def test_thread_pool_round_trip(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            with BatchEvaluator(square, executor=pool) as ev:
                assert ev.evaluate([1, 2, 3]) == [1, 4, 9]

    def test_results_ordered(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            with BatchEvaluator(square, executor=pool) as ev:
                assert ev.evaluate(range(20)) == [
                    i * i for i in range(20)
                ]

    def test_use_outside_context_raises(self):
        ev = BatchEvaluator(square)
        with pytest.raises(RuntimeError):
            ev.evaluate([1])

    def test_external_executor_not_shut_down(self):
        pool = ThreadPoolExecutor(max_workers=1)
        with BatchEvaluator(square, executor=pool) as ev:
            ev.evaluate([2])
        # Still usable: BatchEvaluator must not own it.
        assert pool.submit(square, 3).result() == 9
        pool.shutdown()
