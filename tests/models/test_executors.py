"""Unit tests for the optional batch evaluator."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.models.executors import BatchEvaluator


def square(x):
    return x * x


class TestBatchEvaluator:
    def test_thread_pool_round_trip(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            with BatchEvaluator(square, executor=pool) as ev:
                assert ev.evaluate([1, 2, 3]) == [1, 4, 9]

    def test_results_ordered(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            with BatchEvaluator(square, executor=pool) as ev:
                assert ev.evaluate(range(20)) == [
                    i * i for i in range(20)
                ]

    def test_use_outside_context_raises(self):
        ev = BatchEvaluator(square)
        with pytest.raises(RuntimeError):
            ev.evaluate([1])

    def test_external_executor_not_shut_down(self):
        pool = ThreadPoolExecutor(max_workers=1)
        with BatchEvaluator(square, executor=pool) as ev:
            ev.evaluate([2])
        # Still usable: BatchEvaluator must not own it.
        assert pool.submit(square, 3).result() == 9
        pool.shutdown()


# ---------------------------------------------------------------------------
# OracleRuntime
# ---------------------------------------------------------------------------
import os

from repro.core.policies import WidthPolicy
from repro.errors import WorkerCrashError
from repro.models.executors import OracleRuntime
from repro.models.oracle_runner import run_with_oracle
from repro.trees.generators import iid_boolean


def _thread_factory(workers=2):
    return lambda: ThreadPoolExecutor(max_workers=workers)


def _crash_until_sentinel(payload):
    """Process-pool oracle: dies hard until the sentinel file exists."""
    path, value = payload
    if not os.path.exists(path):
        with open(path, "w"):
            pass
        os._exit(1)  # hard worker death, not an exception
    return value * 2


class TestOracleRuntimeDispatch:
    def test_chunked_dispatch_preserves_order(self):
        with OracleRuntime(
            square, chunk_size=3, executor_factory=_thread_factory(4)
        ) as rt:
            assert rt.evaluate(range(10)) == [i * i for i in range(10)]
            stats = rt.stats
        assert stats.batches == 1
        assert stats.units == 10
        assert stats.chunks == 4  # ceil(10 / 3)
        assert stats.retries == 0
        assert stats.pool_restarts == 0
        assert stats.last_batch_size == 10
        assert stats.oracle_seconds >= stats.last_batch_seconds >= 0

    def test_default_chunking_splits_across_workers(self):
        with OracleRuntime(
            square, max_workers=4, executor_factory=_thread_factory(4)
        ) as rt:
            rt.evaluate(range(10))
            assert rt.stats.chunks == 4  # chunks of ceil(10/4)=3

    def test_pool_persists_across_batches(self):
        with OracleRuntime(
            square, executor_factory=_thread_factory()
        ) as rt:
            rt.evaluate([1, 2])
            rt.evaluate([3])
            assert rt.stats.batches == 2
            assert rt.stats.units == 3

    def test_empty_batch(self):
        with OracleRuntime(
            square, executor_factory=_thread_factory()
        ) as rt:
            assert rt.evaluate([]) == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            OracleRuntime(square, max_retries=-1)
        with pytest.raises(ValueError):
            OracleRuntime(square, chunk_size=0)


class TestOracleRuntimeRetries:
    def test_transient_failure_recovers_with_same_values(self):
        failed = []

        def flaky(x):
            if x == 5 and not failed:
                failed.append(x)
                raise RuntimeError("transient")
            return x * x

        sleeps = []
        with OracleRuntime(
            flaky, chunk_size=2, max_retries=2, backoff_seconds=0.01,
            executor_factory=_thread_factory(),
            sleep=sleeps.append,
        ) as rt:
            out = rt.evaluate(range(8))
        # The retry leaves the results exactly as a clean run's.
        assert out == [i * i for i in range(8)]
        assert rt.stats.retries == 1
        assert sleeps == [0.01]

    def test_exhausted_retries_raise_typed_error(self):
        def always_broken(x):
            raise ValueError("oracle bug")

        sleeps = []
        rt = OracleRuntime(
            always_broken, chunk_size=1, max_retries=2,
            backoff_seconds=0.05, max_backoff_seconds=1.0,
            executor_factory=_thread_factory(),
            sleep=sleeps.append,
        )
        with rt:
            with pytest.raises(WorkerCrashError) as err:
                rt.evaluate([1])
        assert isinstance(err.value.__cause__, ValueError)
        assert rt.stats.retries == 2
        assert sleeps == [0.05, 0.1]

    def test_backoff_is_capped(self):
        def always_broken(x):
            raise ValueError("nope")

        sleeps = []
        rt = OracleRuntime(
            always_broken, chunk_size=1, max_retries=3,
            backoff_seconds=0.5, max_backoff_seconds=0.6,
            executor_factory=_thread_factory(),
            sleep=sleeps.append,
        )
        with rt, pytest.raises(WorkerCrashError):
            rt.evaluate([1])
        assert sleeps == [0.5, 0.6, 0.6]


class TestOracleRuntimeCrashes:
    def test_worker_death_restarts_pool_and_recovers(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        with OracleRuntime(
            _crash_until_sentinel, max_workers=1, max_retries=3,
            backoff_seconds=0.01,
        ) as rt:
            out = rt.evaluate([(sentinel, 21)])
        assert out == [42]
        assert rt.stats.pool_restarts >= 1
        assert rt.stats.retries >= 1

    def test_usable_after_manual_restart(self):
        with OracleRuntime(
            square, executor_factory=_thread_factory()
        ) as rt:
            assert rt.evaluate([3]) == [9]
            rt.restart_pool()
            assert rt.evaluate([4]) == [16]
            assert rt.stats.pool_restarts == 1

    def test_close_is_idempotent(self):
        rt = OracleRuntime(square, executor_factory=_thread_factory())
        with rt:
            rt.evaluate([2])
        rt.close()
        rt.close()


class TestRunWithOracleRuntime:
    def test_runtime_backed_run_matches_serial(self):
        tree = iid_boolean(2, 5, 0.4, seed=9)

        def oracle(v):
            return int(v)

        serial = run_with_oracle(tree, oracle, WidthPolicy(1))
        with OracleRuntime(
            oracle, chunk_size=2, executor_factory=_thread_factory()
        ) as rt:
            pooled = run_with_oracle(
                tree, oracle, WidthPolicy(1), runtime=rt
            )
        assert pooled.value == serial.value
        assert pooled.trace.degrees == serial.trace.degrees
        assert len(pooled.trace.step_seconds) == pooled.num_steps
        assert pooled.trace.wall_seconds >= 0
        assert rt.stats.batches == pooled.num_steps

    def test_executor_and_runtime_mutually_exclusive(self):
        tree = iid_boolean(2, 3, 0.5, seed=0)
        with ThreadPoolExecutor(max_workers=1) as pool:
            with OracleRuntime(
                int, executor_factory=_thread_factory()
            ) as rt:
                with pytest.raises(ValueError):
                    run_with_oracle(
                        tree, int, WidthPolicy(1),
                        executor=pool, runtime=rt,
                    )
