"""Unit tests for the optional batch evaluator."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.models.executors import BatchEvaluator


def square(x):
    return x * x


class TestBatchEvaluator:
    def test_thread_pool_round_trip(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            with BatchEvaluator(square, executor=pool) as ev:
                assert ev.evaluate([1, 2, 3]) == [1, 4, 9]

    def test_results_ordered(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            with BatchEvaluator(square, executor=pool) as ev:
                assert ev.evaluate(range(20)) == [
                    i * i for i in range(20)
                ]

    def test_use_outside_context_raises(self):
        ev = BatchEvaluator(square)
        with pytest.raises(RuntimeError):
            ev.evaluate([1])

    def test_external_executor_not_shut_down(self):
        pool = ThreadPoolExecutor(max_workers=1)
        with BatchEvaluator(square, executor=pool) as ev:
            ev.evaluate([2])
        # Still usable: BatchEvaluator must not own it.
        assert pool.submit(square, 3).result() == 9
        pool.shutdown()


# ---------------------------------------------------------------------------
# OracleRuntime
# ---------------------------------------------------------------------------
import os

from repro.core.policies import WidthPolicy
from repro.errors import WorkerCrashError
from repro.models.executors import OracleRuntime
from repro.models.oracle_runner import run_with_oracle
from repro.trees.generators import iid_boolean


def _thread_factory(workers=2):
    return lambda: ThreadPoolExecutor(max_workers=workers)


def _crash_until_sentinel(payload):
    """Process-pool oracle: dies hard until the sentinel file exists."""
    path, value = payload
    if not os.path.exists(path):
        with open(path, "w"):
            pass
        os._exit(1)  # hard worker death, not an exception
    return value * 2


class TestOracleRuntimeDispatch:
    def test_chunked_dispatch_preserves_order(self):
        with OracleRuntime(
            square, chunk_size=3, executor_factory=_thread_factory(4)
        ) as rt:
            assert rt.evaluate(range(10)) == [i * i for i in range(10)]
            stats = rt.stats
        assert stats.batches == 1
        assert stats.units == 10
        assert stats.chunks == 4  # ceil(10 / 3)
        assert stats.retries == 0
        assert stats.pool_restarts == 0
        assert stats.last_batch_size == 10
        assert stats.oracle_seconds >= stats.last_batch_seconds >= 0

    def test_default_chunking_splits_across_workers(self):
        with OracleRuntime(
            square, max_workers=4, executor_factory=_thread_factory(4)
        ) as rt:
            rt.evaluate(range(10))
            assert rt.stats.chunks == 4  # chunks of ceil(10/4)=3

    def test_pool_persists_across_batches(self):
        with OracleRuntime(
            square, executor_factory=_thread_factory()
        ) as rt:
            rt.evaluate([1, 2])
            rt.evaluate([3])
            assert rt.stats.batches == 2
            assert rt.stats.units == 3

    def test_empty_batch(self):
        with OracleRuntime(
            square, executor_factory=_thread_factory()
        ) as rt:
            assert rt.evaluate([]) == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            OracleRuntime(square, max_retries=-1)
        with pytest.raises(ValueError):
            OracleRuntime(square, chunk_size=0)


class TestOracleRuntimeRetries:
    def test_transient_failure_recovers_with_same_values(self):
        failed = []

        def flaky(x):
            if x == 5 and not failed:
                failed.append(x)
                raise RuntimeError("transient")
            return x * x

        sleeps = []
        with OracleRuntime(
            flaky, chunk_size=2, max_retries=2, backoff_seconds=0.01,
            executor_factory=_thread_factory(),
            sleep=sleeps.append,
        ) as rt:
            out = rt.evaluate(range(8))
        # The retry leaves the results exactly as a clean run's.
        assert out == [i * i for i in range(8)]
        assert rt.stats.retries == 1
        assert sleeps == [0.01]

    def test_exhausted_retries_raise_typed_error(self):
        def always_broken(x):
            raise ValueError("oracle bug")

        sleeps = []
        rt = OracleRuntime(
            always_broken, chunk_size=1, max_retries=2,
            backoff_seconds=0.05, max_backoff_seconds=1.0,
            executor_factory=_thread_factory(),
            sleep=sleeps.append,
        )
        with rt:
            with pytest.raises(WorkerCrashError) as err:
                rt.evaluate([1])
        assert isinstance(err.value.__cause__, ValueError)
        assert rt.stats.retries == 2
        assert sleeps == [0.05, 0.1]

    def test_backoff_is_capped(self):
        def always_broken(x):
            raise ValueError("nope")

        sleeps = []
        rt = OracleRuntime(
            always_broken, chunk_size=1, max_retries=3,
            backoff_seconds=0.5, max_backoff_seconds=0.6,
            executor_factory=_thread_factory(),
            sleep=sleeps.append,
        )
        with rt, pytest.raises(WorkerCrashError):
            rt.evaluate([1])
        assert sleeps == [0.5, 0.6, 0.6]


class TestOracleRuntimeCrashes:
    def test_worker_death_restarts_pool_and_recovers(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        sleeps = []
        with OracleRuntime(
            _crash_until_sentinel, max_workers=1, max_retries=3,
            backoff_seconds=0.01, max_backoff_seconds=1.0,
            sleep=sleeps.append,
        ) as rt:
            out = rt.evaluate([(sentinel, 21)])
        assert out == [42]
        assert rt.stats.pool_restarts >= 1
        assert rt.stats.retries >= 1
        # The fake clock proves backoff followed the documented
        # schedule without the test ever actually sleeping.
        assert sleeps == [
            min(0.01 * 2 ** i, 1.0) for i in range(len(sleeps))
        ]
        assert len(sleeps) == rt.stats.retries

    def test_usable_after_manual_restart(self):
        with OracleRuntime(
            square, executor_factory=_thread_factory()
        ) as rt:
            assert rt.evaluate([3]) == [9]
            rt.restart_pool()
            assert rt.evaluate([4]) == [16]
            assert rt.stats.pool_restarts == 1

    def test_close_is_idempotent(self):
        rt = OracleRuntime(square, executor_factory=_thread_factory())
        with rt:
            rt.evaluate([2])
        rt.close()
        rt.close()


class TestRunWithOracleRuntime:
    def test_runtime_backed_run_matches_serial(self):
        tree = iid_boolean(2, 5, 0.4, seed=9)

        def oracle(v):
            return int(v)

        serial = run_with_oracle(tree, oracle, WidthPolicy(1))
        with OracleRuntime(
            oracle, chunk_size=2, executor_factory=_thread_factory()
        ) as rt:
            pooled = run_with_oracle(
                tree, oracle, WidthPolicy(1), runtime=rt
            )
        assert pooled.value == serial.value
        assert pooled.trace.degrees == serial.trace.degrees
        assert len(pooled.trace.step_seconds) == pooled.num_steps
        assert pooled.trace.wall_seconds >= 0
        assert rt.stats.batches == pooled.num_steps

    def test_executor_and_runtime_mutually_exclusive(self):
        tree = iid_boolean(2, 3, 0.5, seed=0)
        with ThreadPoolExecutor(max_workers=1) as pool:
            with OracleRuntime(
                int, executor_factory=_thread_factory()
            ) as rt:
                with pytest.raises(ValueError):
                    run_with_oracle(
                        tree, int, WidthPolicy(1),
                        executor=pool, runtime=rt,
                    )


# ---------------------------------------------------------------------------
# Chunk timeouts and the circuit breaker
# ---------------------------------------------------------------------------
import threading
from concurrent.futures import BrokenExecutor

from repro.errors import DegradedRunError
from repro.faults import FaultyExecutor, InjectedFaultError


class _DeadPool:
    """Executor whose submit always raises (a pool that died)."""

    def submit(self, fn, /, *args, **kwargs):
        raise BrokenExecutor("dead on arrival")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class _FirstSubmitOnlyPool:
    """Each fresh pool serves exactly one submit, then breaks."""

    def __init__(self):
        self.inner = ThreadPoolExecutor(max_workers=1)
        self.submits = 0

    def submit(self, fn, /, *args, **kwargs):
        self.submits += 1
        if self.submits > 1:
            raise BrokenExecutor("worker gone")
        return self.inner.submit(fn, *args, **kwargs)

    def shutdown(self, wait=True, cancel_futures=False):
        self.inner.shutdown(wait=wait, cancel_futures=cancel_futures)


class TestChunkTimeout:
    def test_hung_chunk_times_out_and_is_retried(self):
        release = threading.Event()
        hung = []

        def sticky(x):
            if x == 3 and not hung:
                hung.append(x)
                release.wait(5.0)  # far beyond the chunk timeout
            return x * x

        try:
            with OracleRuntime(
                sticky, chunk_size=2, max_retries=2,
                backoff_seconds=0.0, chunk_timeout=0.2,
                executor_factory=_thread_factory(2),
                sleep=lambda _s: None,
            ) as rt:
                out = rt.evaluate(range(6))
        finally:
            release.set()
        assert out == [i * i for i in range(6)]
        assert rt.stats.timeouts == 1
        assert rt.stats.pool_restarts >= 1

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            OracleRuntime(square, chunk_timeout=0.0)
        with pytest.raises(ValueError):
            OracleRuntime(square, max_consecutive_rebuilds=0)


class TestCircuitBreaker:
    def test_dead_environment_trips_breaker(self):
        rt = OracleRuntime(
            square, chunk_size=1, max_retries=99,
            backoff_seconds=0.0, max_consecutive_rebuilds=3,
            executor_factory=_DeadPool, sleep=lambda _s: None,
        )
        with rt:
            with pytest.raises(DegradedRunError) as err:
                rt.evaluate([1, 2, 3])
        exc = err.value
        assert exc.completed == 0
        assert exc.pending == 3
        assert exc.partial == [None, None, None]
        assert rt.stats.pool_restarts == 3
        assert isinstance(exc.__cause__, BrokenExecutor)

    def test_breaker_carries_partial_results(self):
        rt = OracleRuntime(
            square, chunk_size=2, max_retries=99,
            backoff_seconds=0.0, max_consecutive_rebuilds=2,
            executor_factory=_FirstSubmitOnlyPool,
            sleep=lambda _s: None,
        )
        with rt:
            with pytest.raises(DegradedRunError) as err:
                rt.evaluate(range(6))
        exc = err.value
        # One chunk lands per round; two rounds ran before the trip.
        assert exc.completed == 4
        assert exc.pending == 2
        assert exc.partial[:4] == [0, 1, 4, 9]
        assert exc.partial[4:] == [None, None]

    def test_clean_round_resets_the_streak(self):
        # Pools break twice back-to-back, then the environment heals:
        # with max_consecutive_rebuilds=3 the batch must complete.
        built = []

        def factory():
            built.append(1)
            if len(built) <= 2:
                return _DeadPool()
            return ThreadPoolExecutor(max_workers=2)

        rt = OracleRuntime(
            square, chunk_size=2, max_retries=99,
            backoff_seconds=0.0, max_consecutive_rebuilds=3,
            executor_factory=factory, sleep=lambda _s: None,
        )
        with rt:
            assert rt.evaluate(range(6)) == [i * i for i in range(6)]
        assert rt.stats.pool_restarts == 2

    def test_breaker_error_reaches_run_with_oracle(self):
        tree = iid_boolean(2, 3, 0.5, seed=1)
        rt = OracleRuntime(
            int, chunk_size=1, max_retries=99, backoff_seconds=0.0,
            max_consecutive_rebuilds=1, executor_factory=_DeadPool,
            sleep=lambda _s: None,
        )
        with rt:
            with pytest.raises(DegradedRunError) as err:
                run_with_oracle(tree, int, WidthPolicy(1), runtime=rt)
        assert err.value.steps_completed == 0


class TestFaultyExecutor:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultyExecutor(
                ThreadPoolExecutor(max_workers=1),
                seed=0, broken_rate=0.8, task_error_rate=0.5,
            )

    def test_injection_is_deterministic_per_seed(self):
        def outcomes(seed):
            inner = ThreadPoolExecutor(max_workers=1)
            fx = FaultyExecutor(
                inner, seed=seed, broken_rate=0.2, task_error_rate=0.3
            )
            out = []
            for i in range(30):
                try:
                    fut = fx.submit(square, i)
                except BrokenExecutor:
                    out.append("broken")
                    continue
                try:
                    out.append(fut.result())
                except InjectedFaultError:
                    out.append("task")
            fx.shutdown()
            return out

        assert outcomes(5) == outcomes(5)
        assert outcomes(5) != outcomes(6)

    def test_runtime_recovers_from_injected_faults(self):
        # A fixed seed per *build* would replay the same fault stream
        # after every rebuild and could wedge; derive each rebuilt
        # pool's seed from the build count (still deterministic).
        builds = []

        def factory():
            builds.append(1)
            return FaultyExecutor(
                ThreadPoolExecutor(max_workers=2),
                seed=100 + len(builds),
                broken_rate=0.15, task_error_rate=0.25,
                max_faults=10,
            )

        rt = OracleRuntime(
            square, chunk_size=2, max_retries=20,
            backoff_seconds=0.0, executor_factory=factory,
            sleep=lambda _s: None,
        )
        with rt:
            assert rt.evaluate(range(12)) == [
                i * i for i in range(12)
            ]
        assert rt.stats.retries + rt.stats.pool_restarts > 0
