"""FaultyOracle: deterministic application-level fault injection."""

import pickle

import pytest

from repro.faults import FaultyOracle, InjectedFaultError, OracleFaultSpec
from repro.models.executors import OracleRuntime


def double(x):
    return x * 2


class TestSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            OracleFaultSpec(seed=0, error_rate=0.6, hang_rate=0.6)
        with pytest.raises(ValueError):
            OracleFaultSpec(seed=0, error_rate=-0.1)

    def test_spec_is_frozen(self):
        spec = OracleFaultSpec(seed=0)
        with pytest.raises(Exception):
            spec.error_rate = 0.5


class TestDeterminism:
    def test_same_payload_same_bucket(self):
        oracle = FaultyOracle(double, OracleFaultSpec(seed=1,
                                                      error_rate=0.5))
        outcomes = []
        for _ in range(3):
            row = []
            for x in range(20):
                try:
                    row.append(oracle(x))
                except InjectedFaultError:
                    row.append("fault")
            outcomes.append(row)
        assert outcomes[0] == outcomes[1] == outcomes[2]
        assert "fault" in outcomes[0]
        assert any(isinstance(v, int) for v in outcomes[0])

    def test_seed_changes_the_fault_set(self):
        def fault_set(seed):
            oracle = FaultyOracle(
                double, OracleFaultSpec(seed=seed, error_rate=0.5)
            )
            out = set()
            for x in range(40):
                try:
                    oracle(x)
                except InjectedFaultError:
                    out.add(x)
            return out

        assert fault_set(1) != fault_set(2)

    def test_survives_pickling(self):
        # Workers receive the oracle by pickle; decisions must not
        # depend on in-process RNG state.
        oracle = FaultyOracle(double, OracleFaultSpec(seed=3,
                                                      error_rate=0.4))
        clone = pickle.loads(pickle.dumps(oracle))
        for x in range(20):
            try:
                a = oracle(x)
            except InjectedFaultError:
                a = "fault"
            try:
                b = clone(x)
            except InjectedFaultError:
                b = "fault"
            assert a == b


class TestTransientFaults:
    def test_sentinel_makes_faults_one_shot(self, tmp_path):
        spec = OracleFaultSpec(
            seed=0, error_rate=1.0, transient_dir=str(tmp_path)
        )
        oracle = FaultyOracle(double, spec)
        with pytest.raises(InjectedFaultError):
            oracle(7)
        assert oracle(7) == 14  # second attempt succeeds
        assert oracle(7) == 14

    def test_without_sentinel_faults_repeat(self):
        oracle = FaultyOracle(double, OracleFaultSpec(seed=0,
                                                      error_rate=1.0))
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                oracle(7)

    def test_runtime_retry_absorbs_transient_faults(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        spec = OracleFaultSpec(
            seed=5, error_rate=0.3, transient_dir=str(tmp_path)
        )
        oracle = FaultyOracle(double, spec)
        rt = OracleRuntime(
            oracle, chunk_size=2, max_retries=4, backoff_seconds=0.0,
            executor_factory=lambda: ThreadPoolExecutor(max_workers=2),
            sleep=lambda _s: None,
        )
        with rt:
            assert rt.evaluate(range(12)) == [x * 2 for x in range(12)]


class TestSlowBand:
    def test_slow_calls_still_answer_correctly(self):
        spec = OracleFaultSpec(seed=2, slow_rate=1.0,
                               slow_seconds=0.001)
        oracle = FaultyOracle(double, spec)
        assert [oracle(x) for x in range(5)] == [0, 2, 4, 6, 8]

    def test_injected_fault_error_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedFaultError, ReproError)
