"""Unit tests for the oracle-backed runner."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import SequentialPolicy, WidthPolicy, sequential_solve
from repro.errors import ModelViolationError
from repro.models.oracle_runner import run_with_oracle
from repro.trees import ExplicitTree, exact_value
from repro.trees.generators import iid_boolean


def identity_oracle(x):
    return int(x) % 2


class TestOracleRunner:
    def test_matches_direct_evaluation(self):
        t = iid_boolean(2, 7, 0.45, seed=1)
        res = run_with_oracle(t, identity_oracle, WidthPolicy(1), None)
        assert res.value == exact_value(t)
        direct = sequential_solve(t)
        assert res.total_work <= t.num_leaves()
        assert res.value == direct.value

    def test_same_schedule_as_engine(self):
        from repro.core import parallel_solve

        t = iid_boolean(2, 6, 0.5, seed=2)
        res = run_with_oracle(t, identity_oracle, WidthPolicy(1), None)
        eng = parallel_solve(t, 1)
        assert res.trace.degrees == eng.trace.degrees
        assert res.evaluated == eng.evaluated

    def test_with_thread_pool(self):
        t = iid_boolean(2, 6, 0.5, seed=3)
        with ThreadPoolExecutor(max_workers=4) as pool:
            res = run_with_oracle(t, identity_oracle, WidthPolicy(1),
                                  pool)
        assert res.value == exact_value(t)

    def test_custom_payload(self):
        t = iid_boolean(2, 5, 0.5, seed=4)

        def payload(tree, leaf):
            return 2 * int(tree.leaf_value(leaf))  # oracle halves it

        def oracle(x):
            return (x // 2) % 2

        res = run_with_oracle(t, oracle, WidthPolicy(1), None,
                              payload=payload)
        assert res.value == exact_value(t)

    def test_timing_fields_populated(self):
        t = iid_boolean(2, 5, 0.5, seed=5)
        res = run_with_oracle(t, identity_oracle, SequentialPolicy(),
                              None)
        assert res.total_seconds > 0
        assert 0 <= res.oracle_seconds <= res.total_seconds

    def test_single_leaf_tree(self):
        t = ExplicitTree([()], {0: 1})
        res = run_with_oracle(t, identity_oracle, WidthPolicy(1), None)
        assert res.value == 1
        assert res.num_steps == 1

    def test_max_steps_guard(self):
        t = iid_boolean(2, 7, 0.5, seed=6)
        with pytest.raises(ModelViolationError):
            run_with_oracle(t, identity_oracle, SequentialPolicy(),
                            None, max_steps=2)


class TestBatchValidation:
    def test_dead_leaf_rejected(self):
        from repro.core import run_boolean

        # Preorder ids: 0 root, 1 = [1, 0] (leaves 2, 3), 4 = [0, 0]
        # (leaves 5, 6).  Evaluating leaf 2 (value 1) kills node 1's
        # subtree, so leaf 3 is dead while the root is undetermined.
        t = ExplicitTree.from_nested([[1, 0], [0, 0]])

        calls = {"n": 0}

        def bad_policy(tree, state):
            calls["n"] += 1
            if calls["n"] == 1:
                return [2]
            return [3]  # dead

        with pytest.raises(ModelViolationError):
            run_boolean(t, bad_policy, validate_batches=True)

    def test_duplicate_in_batch_rejected(self):
        from repro.core import run_boolean

        t = ExplicitTree.from_nested([0, 0])
        with pytest.raises(ModelViolationError):
            run_boolean(t, lambda tree, st: [1, 1],
                        validate_batches=True)

    def test_non_leaf_rejected(self):
        from repro.core import run_boolean

        t = ExplicitTree.from_nested([[0, 0], 0])
        with pytest.raises(ModelViolationError):
            run_boolean(t, lambda tree, st: [1],
                        validate_batches=True)

    def test_valid_policies_pass_validation(self):
        from repro.core import WidthPolicy, run_boolean

        t = iid_boolean(2, 6, 0.5, seed=7)
        res = run_boolean(t, WidthPolicy(1), validate_batches=True)
        assert res.value == exact_value(t)
