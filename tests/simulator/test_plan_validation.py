"""Construction-time validation of fault plans and schedule entries."""

import pytest

from repro.errors import FaultPlanError, ReproError
from repro.faults import FaultPlan, ScheduleEntry


def test_unknown_kind_is_rejected_by_name():
    with pytest.raises(FaultPlanError, match="unknown scheduled fault"):
        ScheduleEntry("meteor", seq=1)


def test_message_faults_require_a_sequence_number():
    with pytest.raises(FaultPlanError, match="need seq="):
        ScheduleEntry("drop")
    with pytest.raises(FaultPlanError, match="negative message"):
        ScheduleEntry("delay", seq=-1)


def test_processor_faults_require_tick_and_level():
    with pytest.raises(FaultPlanError, match="need tick="):
        ScheduleEntry("crash", tick=3)
    with pytest.raises(FaultPlanError, match="negative tick"):
        ScheduleEntry("crash", tick=-1, level=0)
    with pytest.raises(FaultPlanError, match="negative level"):
        ScheduleEntry("stall", tick=0, level=-2)


def test_durations_must_be_at_least_one_tick():
    with pytest.raises(FaultPlanError, match="duration"):
        ScheduleEntry("crash", tick=0, level=0, duration=0)


def test_error_message_names_the_offending_entry():
    with pytest.raises(FaultPlanError, match="kind='meteor'"):
        ScheduleEntry("meteor", seq=1)


def test_duplicate_message_targets_are_rejected():
    with pytest.raises(FaultPlanError, match="seq=4"):
        FaultPlan(0, schedule=[
            ScheduleEntry("drop", seq=4),
            ScheduleEntry("delay", seq=4, duration=2),
        ])


def test_duplicate_processor_slots_are_rejected():
    with pytest.raises(FaultPlanError, match=r"tick=2.*level=1"):
        FaultPlan(0, schedule=[
            ScheduleEntry("crash", tick=2, level=1),
            ScheduleEntry("stall", tick=2, level=1, duration=3),
        ])


def test_distinct_slots_coexist():
    plan = FaultPlan(0, schedule=[
        ScheduleEntry("crash", tick=2, level=1),
        ScheduleEntry("crash", tick=2, level=0),
        ScheduleEntry("crash", tick=3, level=1),
        ScheduleEntry("drop", seq=7),
    ])
    assert plan.processor_fault(level=1, tick=2) == ("crash", 1)
    assert plan.message_fault(7, "value", tick=0) == ("drop", 0)


def test_fault_plan_error_is_both_typed_and_a_value_error():
    with pytest.raises(ValueError):  # legacy handlers keep working
        ScheduleEntry("meteor", seq=1)
    with pytest.raises(ReproError):
        FaultPlan.with_rate(0, "meteor", 0.1)


def test_with_rate_rejects_unknown_kind_by_name():
    with pytest.raises(FaultPlanError, match="meteor"):
        FaultPlan.with_rate(0, "meteor", 0.5)
