"""Integration tests for the Section 7 message-passing machine."""

import numpy as np
import pytest

from repro.core.nodeexpansion import n_parallel_solve, n_sequential_solve
from repro.errors import SimulationError
from repro.simulator import Machine, simulate
from repro.trees import ExplicitTree, UniformTree, exact_value
from repro.trees.generators import (
    all_ones,
    all_zeros,
    iid_boolean,
    sequential_worst_case,
)
from repro.types import TreeKind


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 8))
        t = iid_boolean(2, n, float(rng.random()), seed=seed)
        assert simulate(t).value == exact_value(t)

    @pytest.mark.parametrize("n", [1, 2, 5, 8])
    def test_structured_instances(self, n):
        for t in (all_ones(2, n), all_zeros(2, n),
                  sequential_worst_case(2, n)):
            assert simulate(t).value == exact_value(t)

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_fixed_processor_budgets(self, p):
        t = iid_boolean(2, 7, 0.4, seed=1)
        res = simulate(t, physical_processors=p)
        assert res.value == exact_value(t)

    def test_single_leaf_tree(self):
        t = ExplicitTree([()], {0: 1})
        res = simulate(t)
        assert res.value == 1
        assert res.ticks >= 1

    def test_height_one(self):
        t = UniformTree(2, 1, np.array([0, 1]))
        assert simulate(t).value == exact_value(t)


class TestCostAccounting:
    def test_ticks_bound_expansions_per_level(self):
        t = iid_boolean(2, 8, 0.4, seed=2)
        res = simulate(t)
        # At most one expansion per processor per tick.
        assert res.expansions <= res.ticks * (t.height() + 1)
        assert res.max_degree <= t.height() + 1
        assert sum(res.degree_by_tick) == res.expansions

    def test_machine_between_sequential_and_ideal(self):
        t = iid_boolean(2, 10, 0.4, seed=3)
        seq = n_sequential_solve(t).num_steps
        ideal = n_parallel_solve(t, 1).num_steps
        res = simulate(t)
        # The machine cannot beat the ideal width-1 model by much and
        # should be far better than fully sequential on a big tree.
        assert res.ticks >= ideal
        assert res.ticks < 2 * seq

    def test_messages_counted(self):
        t = iid_boolean(2, 6, 0.4, seed=4)
        res = simulate(t)
        assert res.messages > 0

    def test_fixed_p_slower_than_full(self):
        t = iid_boolean(2, 9, 0.4, seed=5)
        full = simulate(t).ticks
        small = simulate(t, physical_processors=2).ticks
        assert small >= full


class TestValidation:
    def test_minmax_tree_rejected(self):
        t = UniformTree(2, 2, np.zeros(4), kind=TreeKind.MINMAX)
        with pytest.raises(SimulationError):
            Machine(t)

    def test_nonbinary_rejected_at_runtime(self):
        t = UniformTree(3, 2, np.zeros(9, dtype=int))
        with pytest.raises(SimulationError):
            simulate(t)

    def test_zero_processors_rejected(self):
        t = iid_boolean(2, 3, 0.5, seed=0)
        with pytest.raises(SimulationError):
            Machine(t, physical_processors=0)

    def test_tick_limit(self):
        t = iid_boolean(2, 6, 0.4, seed=6)
        with pytest.raises(SimulationError):
            simulate(t, max_ticks=3)


class TestDeterminism:
    def test_repeat_runs_identical(self):
        t = iid_boolean(2, 7, 0.5, seed=7)
        a = simulate(t)
        b = simulate(t)
        assert (a.ticks, a.expansions, a.messages) == \
            (b.ticks, b.expansions, b.messages)
