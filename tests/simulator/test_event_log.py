"""Unit tests for machine event tracing."""

import pytest

from repro.simulator import MsgKind, render_event_log, simulate
from repro.trees.generators import iid_boolean


class TestEventLog:
    def test_disabled_by_default(self):
        t = iid_boolean(2, 4, 0.5, seed=0)
        res = simulate(t)
        assert res.events is None
        assert "without trace_events" in render_event_log(res)

    def test_all_deliveries_recorded(self):
        t = iid_boolean(2, 5, 0.5, seed=1)
        res = simulate(t, trace_events=True)
        assert res.events is not None
        assert len(res.events) == res.messages

    def test_first_event_is_kickoff(self):
        t = iid_boolean(2, 4, 0.5, seed=2)
        res = simulate(t, trace_events=True)
        tick, msg = res.events[0]
        assert msg.kind is MsgKind.P_SOLVE
        assert msg.node == t.root
        assert msg.dest_level == 0

    def test_final_tick_reports_root_value(self):
        # The machine halts on the tick the root's value arrives;
        # other messages may land in the same tick's batch.
        t = iid_boolean(2, 4, 0.5, seed=3)
        res = simulate(t, trace_events=True)
        final_tick = res.events[-1][0]
        finishers = [
            msg for tick, msg in res.events
            if tick == final_tick and msg.dest_level == -1
        ]
        assert len(finishers) == 1
        assert finishers[0].kind is MsgKind.VAL
        assert finishers[0].value == res.value

    def test_ticks_monotone(self):
        t = iid_boolean(2, 5, 0.5, seed=4)
        res = simulate(t, trace_events=True)
        ticks = [tick for tick, _ in res.events]
        assert ticks == sorted(ticks)
        # Unit latency: every message arrives one tick after sending.
        for tick, msg in res.events:
            assert tick == msg.sent_at + 1

    def test_render_truncation(self):
        t = iid_boolean(2, 6, 0.5, seed=5)
        res = simulate(t, trace_events=True)
        out = render_event_log(res, max_lines=5)
        assert len(out.splitlines()) <= 6
        assert "more" in out

    def test_render_zero_lines_gives_summary_only(self):
        t = iid_boolean(2, 4, 0.5, seed=6)
        res = simulate(t, trace_events=True)
        out = render_event_log(res, max_lines=0)
        assert out == f"... {len(res.events)} more"

    def test_render_negative_lines_rejected(self):
        t = iid_boolean(2, 4, 0.5, seed=6)
        res = simulate(t, trace_events=True)
        with pytest.raises(ValueError):
            render_event_log(res, max_lines=-1)

    def test_events_are_tick_message_tuples(self):
        t = iid_boolean(2, 4, 0.5, seed=7)
        res = simulate(t, trace_events=True)
        for tick, msg in res.events:
            assert isinstance(tick, int)
            assert isinstance(msg.kind, MsgKind)
