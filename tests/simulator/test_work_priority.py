"""Unit tests for the machine's work-priority ablation knob."""

import pytest

from repro.errors import SimulationError
from repro.simulator import Machine, simulate
from repro.trees import exact_value
from repro.trees.generators import iid_boolean


class TestWorkPriority:
    @pytest.mark.parametrize("priority", ["p_first", "s_first"])
    def test_both_schedules_correct(self, priority):
        for seed in range(8):
            t = iid_boolean(2, 6, 0.45, seed=seed)
            res = simulate(t, work_priority=priority)
            assert res.value == exact_value(t)

    def test_default_is_p_first(self):
        t = iid_boolean(2, 8, 0.4, seed=1)
        default = simulate(t)
        explicit = simulate(t, work_priority="p_first")
        assert default.ticks == explicit.ticks

    def test_p_first_not_slower_on_balanced_instance(self):
        t = iid_boolean(2, 10, 0.4, seed=2)
        p_first = simulate(t, work_priority="p_first").ticks
        s_first = simulate(t, work_priority="s_first").ticks
        assert p_first <= s_first

    def test_invalid_priority_rejected(self):
        t = iid_boolean(2, 4, 0.5, seed=0)
        with pytest.raises(SimulationError):
            Machine(t, work_priority="bogus")
