"""Fault injection and recovery on the Section 7 machine.

The contract under test: for any seeded :class:`FaultPlan`, the faulty
run terminates and returns the exact fault-free ``val(root)``, and the
same ``(tree, plan)`` pair replays bit-identically.
"""

import pytest

from repro.errors import SimulationError
from repro.faults import (
    ALL_FAULT_KINDS,
    FaultPlan,
    ScheduleEntry,
)
from repro.simulator import simulate
from repro.trees.generators import iid_boolean


def _tree(height=4, seed=0):
    return iid_boolean(2, height, 0.45, seed=seed)


# ---------------------------------------------------------------------------
# FaultPlan construction and decision determinism
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(0, drop=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(0, drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(0, drop=0.6, duplicate=0.3, delay=0.2)
        with pytest.raises(ValueError):
            FaultPlan(0, crash=0.7, stall=0.7)
        with pytest.raises(ValueError):
            FaultPlan(0, max_delay=0)
        with pytest.raises(ValueError):
            FaultPlan(0, stall_ticks=0)

    def test_with_rate_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultPlan.with_rate(0, "lightning", 0.1)

    def test_schedule_entry_validation(self):
        with pytest.raises(ValueError):
            ScheduleEntry("explode")
        with pytest.raises(ValueError):
            ScheduleEntry("drop")  # message fault without seq
        with pytest.raises(ValueError):
            ScheduleEntry("crash", tick=3)  # processor fault w/o level

    def test_begin_run_resets_decisions(self):
        plan = FaultPlan(42, drop=0.5)
        first = [plan.message_fault(i, "VAL", 1) for i in range(50)]
        plan.begin_run()
        again = [plan.message_fault(i, "VAL", 1) for i in range(50)]
        assert first == again
        assert any(f is not None for f in first)

    def test_max_faults_caps_rate_driven_faults(self):
        plan = FaultPlan(7, drop=1.0, max_faults=3)
        hits = [
            plan.message_fault(i, "VAL", 1) is not None for i in range(10)
        ]
        assert sum(hits) == 3
        assert plan.injected == 3

    def test_schedule_fires_regardless_of_cap(self):
        plan = FaultPlan(
            0, max_faults=0,
            schedule=[ScheduleEntry("drop", seq=5)],
        )
        assert plan.message_fault(5, "VAL", 1) == ("drop", 0)
        assert plan.message_fault(6, "VAL", 1) is None


# ---------------------------------------------------------------------------
# The acceptance matrix: every kind x rate converges to the true value
# ---------------------------------------------------------------------------
class TestFaultMatrix:
    @pytest.mark.parametrize("kind", ALL_FAULT_KINDS)
    @pytest.mark.parametrize("rate", [0.01, 0.05, 0.2])
    def test_faulty_run_returns_fault_free_value(self, kind, rate):
        for tree_seed in (0, 1):
            tree = _tree(seed=tree_seed)
            baseline = simulate(tree)
            for plan_seed in (0, 1):
                plan = FaultPlan.with_rate(
                    plan_seed, kind, rate, max_faults=24
                )
                res = simulate(tree, fault_plan=plan)
                assert res.value == baseline.value
                assert res.fault_stats is not None
                assert res.fault_stats.injected <= 24

    def test_combined_faults_converge(self):
        tree = _tree(height=5, seed=3)
        baseline = simulate(tree)
        plan = FaultPlan(
            11, drop=0.05, duplicate=0.05, delay=0.05, reorder=0.1,
            crash=0.02, stall=0.05, max_faults=40,
        )
        res = simulate(tree, fault_plan=plan)
        assert res.value == baseline.value
        stats = res.fault_stats
        assert stats.injected == (
            stats.dropped + stats.duplicated + stats.delayed
            + stats.reordered + stats.crashes + stats.stalls
        )

    def test_overhead_is_recorded(self):
        tree = _tree(height=5, seed=2)
        plan = FaultPlan.with_rate(5, "drop", 0.2, max_faults=16)
        res = simulate(tree, fault_plan=plan)
        assert res.fault_stats.dropped > 0
        # Every drop of a val eventually costs a retransmission or a
        # re-issued invocation somewhere; recovery traffic is counted.
        assert (res.fault_stats.retransmissions
                + res.fault_stats.reissues
                + res.fault_stats.heartbeats) > 0


# ---------------------------------------------------------------------------
# Replay determinism
# ---------------------------------------------------------------------------
class TestReplay:
    def test_same_seed_replays_bit_identically(self):
        tree = _tree(height=5, seed=4)
        plan = FaultPlan(
            9, drop=0.1, duplicate=0.05, delay=0.05, reorder=0.1,
            crash=0.03, stall=0.03, max_faults=32,
        )
        a = simulate(tree, fault_plan=plan, trace_events=True)
        b = simulate(tree, fault_plan=plan, trace_events=True)
        assert a.events == b.events
        assert (a.value, a.ticks, a.expansions, a.messages) == (
            b.value, b.ticks, b.expansions, b.messages
        )

    def test_different_seeds_diverge(self):
        tree = _tree(height=5, seed=4)
        runs = {
            simulate(
                tree,
                fault_plan=FaultPlan.with_rate(s, "drop", 0.2,
                                               max_faults=16),
            ).messages
            for s in range(6)
        }
        assert len(runs) > 1


# ---------------------------------------------------------------------------
# Scripted scenarios
# ---------------------------------------------------------------------------
class TestScheduledFaults:
    def test_dropped_kickoff_is_reissued(self):
        # seq 1 is the machine's own kickoff P_SOLVE; dropping it
        # leaves every processor idle until the supervisor re-issues.
        tree = _tree()
        baseline = simulate(tree)
        plan = FaultPlan(0, schedule=[ScheduleEntry("drop", seq=1)])
        res = simulate(tree, fault_plan=plan)
        assert res.value == baseline.value
        assert res.fault_stats.reissues >= 1
        assert res.ticks > baseline.ticks

    def test_scripted_crash_recovers(self):
        tree = _tree()
        baseline = simulate(tree)
        plan = FaultPlan(
            0,
            schedule=[ScheduleEntry("crash", tick=2, level=0,
                                    duration=3)],
        )
        res = simulate(tree, fault_plan=plan)
        assert res.value == baseline.value
        assert res.fault_stats.crashes == 1

    def test_scripted_stall_preserves_buffered_messages(self):
        tree = _tree()
        baseline = simulate(tree)
        plan = FaultPlan(
            0,
            schedule=[ScheduleEntry("stall", tick=2, level=1,
                                    duration=4)],
        )
        res = simulate(tree, fault_plan=plan)
        assert res.value == baseline.value
        assert res.fault_stats.stalls == 1
        # A stall delays but never destroys messages.
        assert res.fault_stats.lost_in_outage == 0

    def test_scheduled_delay_duration_applies(self):
        tree = _tree()
        baseline = simulate(tree)
        plan = FaultPlan(
            0, schedule=[ScheduleEntry("delay", seq=1, duration=7)]
        )
        res = simulate(tree, fault_plan=plan)
        assert res.value == baseline.value
        # The whole run shifts by the kickoff's extra latency (the
        # supervisor may or may not have re-issued meanwhile).
        assert res.ticks >= baseline.ticks + 7 or \
            res.fault_stats.reissues > 0


# ---------------------------------------------------------------------------
# Fault-free purity
# ---------------------------------------------------------------------------
class TestFaultFreePurity:
    def test_no_plan_means_no_fault_state(self):
        res = simulate(_tree())
        assert res.fault_stats is None

    def test_quiet_plan_preserves_schedule(self):
        # A plan with zero rates adds recovery traffic (acks and
        # heartbeats) but must not change the computation itself.
        tree = _tree(height=5, seed=2)
        base = simulate(tree)
        quiet = simulate(tree, fault_plan=FaultPlan(0))
        assert quiet.value == base.value
        assert quiet.ticks == base.ticks
        assert quiet.expansions == base.expansions
        assert quiet.messages >= base.messages
        assert quiet.fault_stats.injected == 0

    def test_recovery_knob_validation(self):
        tree = _tree()
        with pytest.raises(SimulationError):
            simulate(tree, fault_plan=FaultPlan(0), heartbeat_interval=0)
        with pytest.raises(SimulationError):
            simulate(tree, fault_plan=FaultPlan(0), retransmit_timeout=1)
        with pytest.raises(SimulationError):
            simulate(tree, fault_plan=FaultPlan(0),
                     heartbeat_interval=5, heartbeat_timeout=5)
