"""Edge cases of the Section 7 machine: degenerate trees and zones.

The zone-multiplexing property deliberately asserts *value* invariance
for every processor count and bit-identity only when ``p`` covers all
levels: with fewer physical processors than levels, the round-robin
schedule changes message timing, and the machine's speculative S-SOLVE
work (hence ``expansions`` and ``ticks``) legitimately depends on that
timing.  The root value never does.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import simulate
from repro.trees import exact_value
from repro.trees.generators import iid_boolean


class TestDegenerateTrees:
    def test_height_zero_tree_is_one_lookup(self):
        for seed in range(4):
            tree = iid_boolean(2, 0, 0.5, seed=seed)
            res = simulate(tree)
            assert res.value == exact_value(tree)
            # kickoff (t0->t1) + val report (t1->t2)
            assert res.ticks == 2
            assert res.expansions == 1

    def test_height_one_tree(self):
        for seed in range(6):
            tree = iid_boolean(2, 1, 0.5, seed=seed)
            res = simulate(tree)
            assert res.value == exact_value(tree)

    def test_height_zero_with_one_processor(self):
        tree = iid_boolean(2, 0, 0.5, seed=1)
        res = simulate(tree, physical_processors=1)
        assert res.value == exact_value(tree)


class TestZoneMultiplexing:
    def test_single_physical_processor_serialises_all_levels(self):
        tree = iid_boolean(2, 5, 0.45, seed=7)
        full = simulate(tree)
        serial = simulate(tree, physical_processors=1)
        assert serial.value == full.value
        # One work unit per tick at most across the whole machine.
        assert serial.max_degree <= 1
        assert serial.ticks >= full.ticks

    @given(
        height=st.integers(min_value=1, max_value=5),
        tree_seed=st.integers(min_value=0, max_value=12),
        p=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_value_invariant_under_any_processor_count(
        self, height, tree_seed, p
    ):
        tree = iid_boolean(2, height, 0.45, seed=tree_seed)
        assert (
            simulate(tree, physical_processors=p).value
            == simulate(tree).value
        )

    @given(
        height=st.integers(min_value=1, max_value=5),
        tree_seed=st.integers(min_value=0, max_value=12),
        extra=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_enough_processors_is_bit_identical(
        self, height, tree_seed, extra
    ):
        # With p >= num_levels every zone has one level: the multiplex
        # path must be an exact no-op, not merely value-preserving.
        tree = iid_boolean(2, height, 0.45, seed=tree_seed)
        full = simulate(tree)
        zoned = simulate(tree, physical_processors=height + 1 + extra)
        assert (zoned.value, zoned.ticks, zoned.expansions,
                zoned.messages) == (full.value, full.ticks,
                                    full.expansions, full.messages)
        assert zoned.degree_by_tick == full.degree_by_tick
