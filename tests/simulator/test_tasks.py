"""Unit tests for the simulator's task objects."""

import pytest

from repro.core import solve_subtree
from repro.errors import SimulationError
from repro.simulator.machine import Machine
from repro.simulator.tasks import STask, TraverseTask
from repro.trees import ExplicitTree, UniformTree
from repro.trees.generators import iid_boolean
from repro.types import Gate

import numpy as np


class FakeProc:
    """Captures messages a task emits, for isolated task testing."""

    def __init__(self, machine, level=0):
        self.machine = machine
        self.level = level
        self.val_memory = {}
        self.sent = []
        self.installed = None

    def send_val(self, node, value):
        self.sent.append(("val", node, value))

    def send_invocation(self, kind, node, dest):
        self.sent.append((kind, node, dest))

    def install_pending(self, pending):
        self.installed = pending


def machine_for(tree):
    return Machine(tree)


class TestSTask:
    def test_stepwise_matches_solve_subtree(self):
        for seed in range(6):
            tree = iid_boolean(2, 5, 0.5, seed=seed)
            machine = machine_for(tree)
            proc = FakeProc(machine)
            task = STask(tree.root)
            guard = 0
            while not task.done:
                task.work(proc)
                guard += 1
                assert guard < 10_000
            expected_value, expected_leaves = solve_subtree(
                tree, tree.root
            )
            assert task.result == expected_value
            assert proc.sent[-1] == ("val", tree.root, expected_value)
            # Work ticks = expansions = internal visits + leaf visits
            # of the left-to-right search; must be at least the leaf
            # count the recursive version reads.
            assert guard >= len(expected_leaves)

    def test_stack_is_root_to_frontier_path(self):
        tree = iid_boolean(2, 4, 0.0, seed=0)  # all-zero leaves
        machine = machine_for(tree)
        proc = FakeProc(machine)
        task = STask(tree.root)
        for _ in range(3):
            task.work(proc)
        nodes = [frame[0] for frame in task.stack]
        # Consecutive stack nodes are parent/child pairs.
        for parent, child in zip(nodes, nodes[1:]):
            assert child in tree.children(parent)
        # Top of stack is unexpanded.
        assert task.stack[-1][1] is None

    def test_rejects_nonbinary_tree(self):
        tree = UniformTree(3, 2, np.zeros(9, dtype=int))
        machine = machine_for(tree)
        proc = FakeProc(machine)
        task = STask(tree.root)
        with pytest.raises(SimulationError):
            task.work(proc)

    def test_rejects_non_nor_gate(self):
        tree = ExplicitTree.from_nested([[0, 1], 1], gates=Gate.OR)
        machine = machine_for(tree)
        proc = FakeProc(machine)
        task = STask(tree.root)
        with pytest.raises(SimulationError):
            task.work(proc)


class TestTraverseTask:
    def test_actions_mirror_stack(self):
        tree = iid_boolean(2, 5, 0.0, seed=1)
        machine = machine_for(tree)
        proc = FakeProc(machine)
        stask = STask(tree.root)
        for _ in range(4):
            stask.work(proc)
        trav = TraverseTask(stask, proc)
        assert len(trav.actions) == len(stask.stack)
        # Offsets are consecutive from zero.
        assert [a[0] for a in trav.actions] == \
            list(range(len(stask.stack)))
        # The last action corresponds to the unexpanded terminal.
        assert trav.actions[-1][1] == "terminal"

    def test_traversal_sends_and_installs(self):
        tree = iid_boolean(2, 5, 0.0, seed=2)
        machine = machine_for(tree)
        proc = FakeProc(machine, level=0)
        stask = STask(tree.root)
        for _ in range(4):
            stask.work(proc)
        proc.sent.clear()
        trav = TraverseTask(stask, proc)
        while not trav.finished:
            trav.work(proc)
        # Self task deferred and installed at the end.
        assert proc.installed is not None
        tag, node = proc.installed
        assert node == tree.root
        # Messages only target deeper levels (no self-messages).
        for kind, node, dest in proc.sent:
            assert dest >= 1
